"""Lane pipelining vs the batch-synchronous barrier under bank skew.

The service tier used to be batch-synchronous: one straggler request held
*every* bank idle until the batch's makespan elapsed.  Cross-batch lane
pipelining (``BatchExecutor(pipeline=True)``, the default) carries each
bank's busy-until horizon across batches, so a new batch's requests start
on banks the previous batch has already drained.

This benchmark makes the win measurable under the shape that hurts the
barrier most: a skewed Poisson overload where one scan in
``1/STRAGGLER_PERIOD`` is a wide ``between`` over a high-bit-width column
(a straggler several times costlier than the common case), with columns
spread across the 8 banks of the paper's DDR3 configuration.  Both modes
serve the *identical* admitted workload (admission is unbounded here so
the comparison is schedule-vs-schedule), and results stay bit-exact — the
property tests in ``tests/test_service_lanes.py`` pin that; here we spot
check it and compare modeled completion.

The acceptance bar: pipelined modeled throughput (completed bytes over
the completion makespan) is at least 1.3x the barrier's on this workload,
and the run emits ``BENCH_pipeline.json`` with throughput, sojourn
percentiles, makespans, and bank idle fractions for both modes, plus
``TRACE_pipeline.json`` — the Perfetto lane timeline of the pipelined run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import ResultTable
from repro.database.bitweaving import BitWeavingColumn
from repro.service import (
    BatchExecutor,
    BatchPolicy,
    ScanRequest,
    ServiceFrontend,
    poisson_schedule,
)

from _bench_utils import emit, emit_json, emit_trace

BANKS = 8
ROWS_PER_COLUMN = 65536         # one 8 KiB DRAM row per bit plane
SMALL_BITS = 4                  # the common, cheap predicate scans
BIG_BITS = 12                   # straggler scans: 3x the planes, 'between'
NUM_SCANS = 256
STRAGGLER_PERIOD = 8            # every 8th scan is a straggler
ARRIVAL_RATE_PER_S = 8e6        # well past the sequential service rate
MAX_BATCH = 16


def _build_scans(seed: int = 7):
    rng = np.random.default_rng(seed)
    small = [
        BitWeavingColumn(rng.integers(0, 1 << SMALL_BITS, size=ROWS_PER_COLUMN), SMALL_BITS)
        for _ in range(BANKS)
    ]
    big = [
        BitWeavingColumn(rng.integers(0, 1 << BIG_BITS, size=ROWS_PER_COLUMN), BIG_BITS)
        for _ in range(BANKS)
    ]
    scans = []
    for index in range(NUM_SCANS):
        if index % STRAGGLER_PERIOD == 0:
            column = big[(index // STRAGGLER_PERIOD) % BANKS]
            low = int(rng.integers(0, 1 << (BIG_BITS - 1)))
            high = low + int(rng.integers(1, 1 << (BIG_BITS - 1)))
            scans.append((column, "between", (low, high)))
        else:
            column = small[index % BANKS]
            scans.append((column, "less_than", (int(rng.integers(1, 1 << SMALL_BITS)),)))
    return scans


def _run_mode(system, scans, pipeline: bool):
    ambit = system["ambit"]
    frontend = ServiceFrontend(
        # sanitize: every dispatch is certified by the schedule race
        # detector (repro.verify) — the benchmark doubles as its workload.
        executor=BatchExecutor(engine=ambit, pipeline=pipeline, sanitize=True),
        policy=BatchPolicy(max_batch=MAX_BATCH, window_ns=None),
        max_queue_depth=10 * NUM_SCANS,  # unbounded: identical workloads
        # Trace the pipelined mode (bit-exactness with observe=False is a
        # property test); its TRACE_pipeline.json ships with the bench JSON.
        observe=pipeline,
    )
    requests = [ScanRequest(column=c, kind=k, constants=cs) for c, k, cs in scans]
    events = poisson_schedule(requests, rate_per_s=ARRIVAL_RATE_PER_S, seed=11)
    result = frontend.run(events, name="pipelined" if pipeline else "barrier")
    metrics = result.metrics
    completed_bytes = sum(r.metrics.bytes_produced for r in result.completed())
    throughput = completed_bytes / (metrics.makespan_ns * 1e-9)
    return frontend, result, throughput


def _run_experiment(system):
    scans = _build_scans()
    outcomes = {}
    for pipeline in (False, True):
        outcomes[pipeline] = _run_mode(system, scans, pipeline)
    return scans, outcomes


@pytest.mark.benchmark(group="pipeline")
def test_lane_pipelining_beats_the_barrier(benchmark, ddr3_ambit_system):
    scans, outcomes = benchmark(_run_experiment, ddr3_ambit_system)

    table = ResultTable(
        title=(
            f"Skewed Poisson overload ({ARRIVAL_RATE_PER_S / 1e6:.0f} M req/s, "
            f"1/{STRAGGLER_PERIOD} stragglers) on {BANKS} banks, batches of {MAX_BATCH}"
        ),
        columns=[
            "mode", "completed", "makespan_ms", "GB/s", "sojourn_p99_us",
            "bank_idle", "overlap_ms",
        ],
    )
    payload = {}
    for pipeline in (False, True):
        frontend, result, throughput = outcomes[pipeline]
        metrics = result.metrics
        mode = "pipelined" if pipeline else "barrier"
        # Mean per-bank idle over the run, comparable across modes: every
        # scan here occupies exactly one bank for its serial latency, so
        # summed per-bank busy time == the completed serial latency (for
        # the pipelined mode this matches LaneMetrics.bank_idle_fraction;
        # the barrier mode has no persistent lanes to snapshot).
        idle = 1.0 - metrics.serial_latency_ns / (BANKS * metrics.makespan_ns)
        overlap_ns = frontend.lane_metrics().cross_batch_overlap_ns if pipeline else 0.0
        table.add_row(
            mode,
            metrics.completed,
            metrics.makespan_ns / 1e6,
            throughput / 1e9,
            metrics.sojourn_p99_ns / 1e3,
            idle,
            overlap_ns / 1e6,
        )
        payload[mode] = {
            "completed": metrics.completed,
            "rejected": metrics.rejected,
            "batches": metrics.batches,
            "throughput_gb_s": throughput / 1e9,
            "sojourn_p50_us": metrics.sojourn_p50_ns / 1e3,
            "sojourn_p99_us": metrics.sojourn_p99_ns / 1e3,
            "makespan_ms": metrics.makespan_ns / 1e6,
            "busy_ms": metrics.busy_ns / 1e6,
            "bank_idle_fraction": idle,
            "cross_batch_overlap_ms": overlap_ns / 1e6,
        }
    gain = payload["pipelined"]["throughput_gb_s"] / payload["barrier"]["throughput_gb_s"]
    payload["pipelined_vs_barrier_throughput"] = gain
    emit(table)
    emit(f"lane pipelining is {gain:.2f}x the batch-synchronous barrier")
    emit_json("pipeline", payload)
    pipelined_frontend = outcomes[True][0]
    emit_trace("pipeline", pipelined_frontend.obs.tracer, pipelined_frontend.obs.metrics)

    # Both modes served the identical workload (nothing rejected), so the
    # comparison is purely schedule-vs-schedule ...
    barrier_metrics = outcomes[False][1].metrics
    pipelined_metrics = outcomes[True][1].metrics
    assert barrier_metrics.rejected == pipelined_metrics.rejected == 0
    assert barrier_metrics.completed == pipelined_metrics.completed == NUM_SCANS

    # ... the energy bill is identical (the schedule never changes the
    # work), and results stay bit-exact with sequential execution.
    assert pipelined_metrics.energy_j == pytest.approx(barrier_metrics.energy_j)
    for (column, kind, constants), record in list(
        zip(scans, outcomes[True][1].completed())
    )[:16]:
        expected, _ = column.scan(kind, *constants)
        assert np.array_equal(record.value, expected)

    # Acceptance: >= 1.3x modeled throughput from cross-batch pipelining,
    # with every request completing no later than under the barrier.
    assert gain >= 1.3
    for fast, slow in zip(outcomes[True][1].records, outcomes[False][1].records):
        assert fast.finish_ns <= slow.finish_ns * (1 + 1e-9)
    assert pipelined_metrics.sojourn_p99_ns <= barrier_metrics.sojourn_p99_ns * (1 + 1e-9)
