"""Batch plan optimizer vs the per-request planner on a repetitive workload.

Real query streams repeat themselves: dashboards refresh the same
conjunctions, cohorts of clients ask near-identical questions, and a
bitmap index's most selective predicates appear in most queries.  The
per-request planner lowers every conjunction in isolation and pins its
whole chain to the index's stable bank offset — so a repetition-heavy
stream re-executes identical sub-chains over and over, serialized on one
set of banks while the other seven idle.

The batch plan optimizer (``optimize=True``) rewrites each closed batch
as one shared DAG: identical predicate sub-chains execute **once** per
batch and fan their result bitmap out to every consumer (cross-request
CSE), a single request's independent sub-chains spread over distinct
bank lanes chosen from the executor's busy horizons (sub-chain
splitting, joined by a host-side merge tree priced like the cluster
gather), and deadline urgency is priced off those same horizons.

This benchmark drives a skewed, repetition-heavy Poisson overload —
``NUM_REQUESTS`` conjunctions drawn Zipf-style from ``NUM_TEMPLATES``
templates (duplication rate well above 0.5) against one bitmap index on
the paper's 8-bank DDR3 device — through both planners.  Both modes
serve the identical admitted workload with ``sanitize=True`` (every
optimized DAG is certified by the extended plan linter, every dispatch
replayed by the schedule race detector), and results stay bit-exact with
host evaluation.

The acceptance bar: optimized modeled throughput (completed bytes over
the completion makespan) is at least 1.3x the PR-5 pipelined baseline on
this workload with ``ops_eliminated > 0``, no worse p99 sojourn, and no
more energy; the run emits ``BENCH_optimizer.json`` plus
``TRACE_optimizer.json`` — the Perfetto lane timeline of the optimized run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import ResultTable
from repro.database.bitmap_index import BitmapIndex
from repro.database.tables import ColumnTable
from repro.service import (
    BatchExecutor,
    BatchPolicy,
    BitmapConjunctionRequest,
    ServiceFrontend,
    poisson_schedule,
)

from _bench_utils import emit, emit_json, emit_trace

BANKS = 8
NUM_ROWS = 65536                # one 8 KiB DRAM row per bitmap
CARDINALITIES = {"region": 16, "status": 8, "channel": 8}
NUM_TEMPLATES = 12              # distinct conjunction shapes in the pool
NUM_REQUESTS = 192
ZIPF_S = 1.2                    # template popularity skew
ARRIVAL_RATE_PER_S = 8e6        # well past the sequential service rate
MAX_BATCH = 16


def _build_workload(seed: int = 7):
    """One bitmap index plus a skewed stream of template-drawn conjunctions."""
    rng = np.random.default_rng(seed)
    table = ColumnTable("orders", NUM_ROWS)
    for name, cardinality in CARDINALITIES.items():
        table.add_column(
            name, rng.integers(0, cardinality, size=NUM_ROWS), cardinality=cardinality
        )
    index = BitmapIndex(table, list(CARDINALITIES))

    columns = list(CARDINALITIES)
    templates = []
    for _ in range(NUM_TEMPLATES):
        picked = rng.choice(len(columns), size=int(rng.integers(2, 4)), replace=False)
        predicates = []
        for c in picked:
            name = columns[c]
            width = int(rng.integers(2, 5))
            values = rng.choice(CARDINALITIES[name], size=width, replace=False)
            predicates.append((name, tuple(int(v) for v in values)))
        templates.append(tuple(predicates))

    weights = 1.0 / np.arange(1, NUM_TEMPLATES + 1) ** ZIPF_S
    weights /= weights.sum()
    draws = rng.choice(NUM_TEMPLATES, size=NUM_REQUESTS, p=weights)
    requests = [
        BitmapConjunctionRequest(index=index, predicates=templates[d]) for d in draws
    ]
    duplication_rate = 1.0 - len(set(int(d) for d in draws)) / NUM_REQUESTS
    return index, requests, duplication_rate


def _run_mode(system, requests, optimize: bool):
    ambit = system["ambit"]
    frontend = ServiceFrontend(
        # sanitize: the race detector replays every dispatch, and (when
        # optimizing) the extended plan linter certifies every batch DAG
        # — the benchmark numbers are certified ones.
        executor=BatchExecutor(engine=ambit, sanitize=True),
        policy=BatchPolicy(max_batch=MAX_BATCH, window_ns=None),
        max_queue_depth=10 * NUM_REQUESTS,  # unbounded: identical workloads
        optimize=optimize,
        # Trace the optimized mode (bit-exactness with observe=False is a
        # property test); its TRACE_optimizer.json ships with the bench JSON.
        observe=optimize,
    )
    events = poisson_schedule(requests, rate_per_s=ARRIVAL_RATE_PER_S, seed=11)
    result = frontend.run(events, name="optimized" if optimize else "baseline")
    metrics = result.metrics
    completed_bytes = sum(r.metrics.bytes_produced for r in result.completed())
    throughput = completed_bytes / (metrics.makespan_ns * 1e-9)
    return frontend, result, throughput


def _run_experiment(system):
    index, requests, duplication_rate = _build_workload()
    outcomes = {}
    for optimize in (False, True):
        outcomes[optimize] = _run_mode(system, requests, optimize)
    return index, requests, duplication_rate, outcomes


@pytest.mark.benchmark(group="optimizer")
def test_plan_optimizer_beats_per_request_lowering(benchmark, ddr3_ambit_system):
    index, requests, duplication_rate, outcomes = benchmark(
        _run_experiment, ddr3_ambit_system
    )

    table = ResultTable(
        title=(
            f"Repetition-heavy Poisson overload ({NUM_REQUESTS} conjunctions from "
            f"{NUM_TEMPLATES} templates, duplication {duplication_rate:.2f}) on "
            f"{BANKS} banks, batches of {MAX_BATCH}"
        ),
        columns=[
            "mode", "completed", "makespan_ms", "GB/s", "sojourn_p99_us",
            "ops_eliminated", "shared_subchains", "host_merge_us",
        ],
    )
    payload = {"duplication_rate": duplication_rate}
    for optimize in (False, True):
        _, result, throughput = outcomes[optimize]
        metrics = result.metrics
        mode = "optimized" if optimize else "baseline"
        table.add_row(
            mode,
            metrics.completed,
            metrics.makespan_ns / 1e6,
            throughput / 1e9,
            metrics.sojourn_p99_ns / 1e3,
            metrics.ops_eliminated,
            metrics.shared_subchains,
            metrics.host_merge_ns / 1e3,
        )
        payload[mode] = {
            "completed": metrics.completed,
            "rejected": metrics.rejected,
            "batches": metrics.batches,
            "throughput_gb_s": throughput / 1e9,
            "sojourn_p50_us": metrics.sojourn_p50_ns / 1e3,
            "sojourn_p99_us": metrics.sojourn_p99_ns / 1e3,
            "makespan_ms": metrics.makespan_ns / 1e6,
            "busy_ms": metrics.busy_ns / 1e6,
            "ops_eliminated": metrics.ops_eliminated,
            "shared_subchains": metrics.shared_subchains,
            "host_merge_us": metrics.host_merge_ns / 1e3,
        }
    gain = payload["optimized"]["throughput_gb_s"] / payload["baseline"]["throughput_gb_s"]
    payload["optimized_vs_baseline_throughput"] = gain
    emit(table)
    emit(f"the batch plan optimizer is {gain:.2f}x the per-request planner")
    emit_json("optimizer", payload)
    optimized_frontend = outcomes[True][0]
    emit_trace("optimizer", optimized_frontend.obs.tracer, optimized_frontend.obs.metrics)

    # Both modes served the identical workload (nothing rejected), so the
    # comparison is purely plan-vs-plan ...
    baseline_metrics = outcomes[False][1].metrics
    optimized_metrics = outcomes[True][1].metrics
    assert baseline_metrics.rejected == optimized_metrics.rejected == 0
    assert baseline_metrics.completed == optimized_metrics.completed == NUM_REQUESTS

    # ... elimination is real (shared sub-chains execute once per batch),
    # so the optimized stream does strictly *less* device work ...
    assert duplication_rate >= 0.5
    assert optimized_metrics.ops_eliminated > 0
    assert optimized_metrics.shared_subchains > 0
    assert optimized_metrics.energy_j <= baseline_metrics.energy_j * (1 + 1e-9)

    # ... and results stay bit-exact with host evaluation.
    for request, record in list(zip(requests, outcomes[True][1].completed()))[:16]:
        expected, _ = index.evaluate_conjunction(list(request.predicates))
        assert np.array_equal(record.value, expected)

    # Acceptance: >= 1.3x modeled throughput at duplication >= 0.5, with
    # tail latency no worse than the per-request baseline.
    assert gain >= 1.3
    assert optimized_metrics.sojourn_p99_ns <= baseline_metrics.sojourn_p99_ns * (1 + 1e-9)
