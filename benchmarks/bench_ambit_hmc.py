"""E3 — Ambit integrated into a 3D-stacked (HMC 2.0-like) device.

Paper claim (Section 2): when integrated directly into the HMC 2.0 device,
which has many more banks than a DDR module, Ambit improves bulk bitwise
operation throughput by 9.7x compared to processing in the logic layer of
HMC 2.0.

The logic-layer baseline is bound by the stack's aggregate internal (TSV)
bandwidth: it must read both operands and write the result through the
vault buses.  Ambit-in-HMC is bound by per-bank row operations, summed over
every bank of every vault.
"""

from __future__ import annotations

import pytest

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.tables import ResultTable
from repro.dram.device import DramDevice
from repro.stacked.hmc import HmcParameters, HmcStack

from _bench_utils import emit

OPERATIONS = ("not", "and", "or", "xor")
#: Internal traffic (bytes over the TSVs per result byte) for logic-layer
#: processing: read both operands, write the result.
LOGIC_LAYER_TRAFFIC = {"not": 2.0, "and": 3.0, "or": 3.0, "xor": 3.0}
VECTOR_BYTES = 32 * 1024 * 1024


def _run_experiment():
    stack = HmcStack(HmcParameters.hmc2())
    vault_device = DramDevice.hmc_vault()
    banks_total = stack.parameters.total_banks
    ambit = AmbitEngine(vault_device, AmbitConfig(banks_parallel=vault_device.geometry.banks_total))

    table = ResultTable(
        title="E3: throughput inside one HMC 2.0 stack (GB/s of result)",
        columns=["op", "logic_layer", "ambit_in_hmc", "ratio"],
    )
    ratios = []
    for op in OPERATIONS:
        internal_bw = stack.parameters.internal_bandwidth_bytes_per_s
        logic_layer_throughput = internal_bw / LOGIC_LAYER_TRAFFIC[op]
        # Ambit-in-HMC: every bank of every vault performs row-wide operations.
        per_bank_throughput = (
            vault_device.geometry.row_size_bytes / (ambit.per_row_latency_ns(op) * 1e-9)
        )
        ambit_throughput = per_bank_throughput * banks_total
        ratio = ambit_throughput / logic_layer_throughput
        ratios.append(ratio)
        table.add_row(op, logic_layer_throughput / 1e9, ambit_throughput / 1e9, ratio)
    average = sum(ratios) / len(ratios)
    table.add_row("average", "-", "-", average)
    return table, average


@pytest.mark.benchmark(group="E3-ambit-in-hmc")
def test_e3_ambit_in_hmc_vs_logic_layer(benchmark):
    table, average = benchmark(_run_experiment)
    emit(table)
    emit(f"paper: 9.7x vs HMC 2.0 logic layer | measured: {average:.1f}x")
    assert 5 < average < 18
