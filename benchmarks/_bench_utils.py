"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import os
from typing import Any


def emit(table_or_text) -> None:
    """Print a result table (or plain text) into the benchmark log.

    Benchmarks run with ``-s`` show these tables inline; without ``-s`` they
    are still captured by pytest and shown for failing benchmarks.
    """
    text = table_or_text.render() if hasattr(table_or_text, "render") else str(table_or_text)
    print("\n" + text)


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars, tuples, and odd dict keys into JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def emit_trace(name: str, tracer, metrics=None) -> str:
    """Write ``TRACE_<name>.json`` — the Perfetto trace for one bench run.

    Uploaded alongside ``BENCH_<name>.json`` so a regression in the perf
    trajectory comes with the lane-level timeline that explains it: load
    the file at ui.perfetto.dev (or chrome://tracing) and read the bank
    lanes directly.  Validated in CI by ``tools/validate_bench.py``.
    """
    from repro.obs import build_trace

    directory = os.environ.get("BENCH_JSON_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"TRACE_{name}.json")
    with open(path, "w") as handle:
        json.dump(build_trace(tracer, metrics=metrics), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return path


def emit_json(name: str, payload: dict) -> str:
    """Write ``BENCH_<name>.json`` — the machine-readable perf trajectory.

    One JSON file per benchmark, overwritten on every run, so CI (and any
    tooling diffing runs over time) can track throughput, percentiles,
    makespans, and bank idle fractions without scraping tables.  The
    target directory defaults to the working directory and can be moved
    with ``BENCH_JSON_DIR``.
    """
    directory = os.environ.get("BENCH_JSON_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(_jsonable(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {path}")
    return path
