"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def emit(table_or_text) -> None:
    """Print a result table (or plain text) into the benchmark log.

    Benchmarks run with ``-s`` show these tables inline; without ``-s`` they
    are still captured by pytest and shown for failing benchmarks.
    """
    text = table_or_text.render() if hasattr(table_or_text, "render") else str(table_or_text)
    print("\n" + text)
