"""Frontend-shaped batching under Poisson arrivals vs. sequential service.

PR 1's batch scheduler only overlapped banks when the *caller* hand-built
a batch; here the service shapes its own batches.  Predicate scans arrive
as a Poisson process at well over the sequential service rate; the
frontend admits them into a bounded priority queue (rejecting the
overflow), the planner closes size-limited batches, and the executor
overlaps them across the 8 banks of the paper's DDR3 configuration.

The acceptance bar: frontend-shaped batches sustain at least 6x the
sequential throughput while the run reports wait and sojourn p50/p99,
deadline misses, and rejections — and every completed scan stays bit-exact
with sequential execution at identical energy (bank overlap is the only
speedup mechanism; the service never changes the work).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import ResultTable
from repro.database.bitweaving import BitWeavingColumn
from repro.database.queries import QueryEngine

from _bench_utils import emit, emit_json

NUM_COLUMNS = 16
ROWS_PER_COLUMN = 65536  # one 8 KiB DRAM row per bit vector
CODE_BITS = 8
NUM_SCANS = 192
ARRIVAL_RATE_PER_S = 4e6        # well past the sequential service rate
MAX_BATCH = 64
MAX_QUEUE_DEPTH = 80
DEADLINE_SLACK_NS = 60_000.0    # a few scan latencies of slack


def _build_scans(seed: int = 7):
    rng = np.random.default_rng(seed)
    columns = [
        BitWeavingColumn(rng.integers(0, 1 << CODE_BITS, size=ROWS_PER_COLUMN), CODE_BITS)
        for _ in range(NUM_COLUMNS)
    ]
    kinds = ("between", "equal", "less_than", "less_equal")
    scans = []
    for index in range(NUM_SCANS):
        column = columns[index % NUM_COLUMNS]
        # Rotate the kind per column round (not per scan): every column —
        # and therefore every bank — sees the same mix of cheap and
        # expensive predicates, the balanced-traffic shape the sequential
        # baseline in bench_service_batch uses as well.
        kind = kinds[(index // NUM_COLUMNS) % len(kinds)]
        if kind == "between":
            low = int(rng.integers(0, 100))
            scans.append((column, kind, (low, low + int(rng.integers(1, 120)))))
        else:
            scans.append((column, kind, (int(rng.integers(0, 1 << CODE_BITS)),)))
    return scans


def _run_experiment(system):
    from repro.api import PimSession
    from repro.service import (
        BatchExecutor,
        BatchPolicy,
        ScanRequest,
        ServiceFrontend,
        poisson_schedule,
    )

    ambit = system["ambit"]
    scans = _build_scans()
    query_engine = QueryEngine(ambit=ambit)

    # Sequential baseline: each scan alone, one after another.
    sequential_ns = 0.0
    sequential_energy = 0.0
    sequential_bytes = 0
    for column, kind, constants in scans:
        _, plan = column.scan(kind, *constants)
        cost = query_engine.ambit_scan_cost(plan)
        sequential_ns += cost.latency_ns
        sequential_energy += cost.energy_j
        sequential_bytes += cost.bytes_produced

    # Frontend-shaped service under Poisson arrivals, driven through the
    # unified client API (the same loop drives the cluster benchmark).
    session = PimSession(
        ServiceFrontend(
            # sanitize=True: every dispatched schedule is replayed by the
            # race detector — the benchmark numbers are certified ones.
            executor=BatchExecutor(engine=ambit, sanitize=True),
            policy=BatchPolicy(max_batch=MAX_BATCH, window_ns=None),
            max_queue_depth=MAX_QUEUE_DEPTH,
        ),
        name="poisson_frontend",
    )
    requests = [ScanRequest(column=c, kind=k, constants=cs) for c, k, cs in scans]
    events = poisson_schedule(
        requests,
        rate_per_s=ARRIVAL_RATE_PER_S,
        seed=11,
        deadline_slack_ns=DEADLINE_SLACK_NS,
    )
    futures = session.submit_stream(events)
    session.drain()
    metrics = session.report().details

    completed = [f for f in futures if f.done()]
    completed_bytes = sum(f.metrics.bytes_produced for f in completed)
    completed_serial_ns = sum(f.metrics.latency_ns for f in completed)
    sequential_tput = sequential_bytes / (sequential_ns * 1e-9)
    pipeline_tput = completed_bytes / (metrics.busy_ns * 1e-9)
    speedup = pipeline_tput / sequential_tput

    table = ResultTable(
        title=f"Poisson arrivals ({ARRIVAL_RATE_PER_S / 1e6:.0f} M req/s offered) on "
        f"{ambit.config.banks_parallel} banks, batches of {MAX_BATCH}",
        columns=["mode", "served", "busy_ms", "GB/s", "speedup"],
    )
    table.add_row("sequential", len(scans), sequential_ns / 1e6,
                  sequential_tput / 1e9, 1.0)
    table.add_row("frontend", metrics.completed, metrics.busy_ns / 1e6,
                  pipeline_tput / 1e9, speedup)

    queue_table = ResultTable(
        title="Queueing metrics",
        columns=["offered", "rejected", "batches", "wait_p50_us", "wait_p99_us",
                 "sojourn_p50_us", "sojourn_p99_us", "deadline_misses"],
    )
    queue_table.add_row(
        metrics.offered, metrics.rejected, metrics.batches,
        metrics.wait_p50_ns / 1e3, metrics.wait_p99_ns / 1e3,
        metrics.sojourn_p50_ns / 1e3, metrics.sojourn_p99_ns / 1e3,
        metrics.deadline_misses,
    )
    return table, queue_table, session, futures, completed_serial_ns, speedup


@pytest.mark.benchmark(group="service-frontend")
def test_service_frontend_poisson_throughput(benchmark, ddr3_ambit_system):
    table, queue_table, session, futures, completed_serial_ns, speedup = benchmark(
        _run_experiment, ddr3_ambit_system
    )
    emit(table)
    emit(queue_table)
    emit(f"frontend-shaped throughput is {speedup:.1f}x sequential")
    metrics = session.report().details

    # Machine-readable perf trajectory for CI diffing.
    lanes = session.backend.lane_metrics("service_frontend")
    completed = [f for f in futures if f.done()]
    emit_json(
        "service_frontend",
        {
            "offered": metrics.offered,
            "completed": metrics.completed,
            "rejected": metrics.rejected,
            "batches": metrics.batches,
            "deadline_misses": metrics.deadline_misses,
            "throughput_gb_s": sum(f.metrics.bytes_produced for f in completed)
            / (metrics.busy_ns * 1e-9) / 1e9,
            "speedup_vs_sequential": speedup,
            "wait_p50_us": metrics.wait_p50_ns / 1e3,
            "wait_p99_us": metrics.wait_p99_ns / 1e3,
            "sojourn_p50_us": metrics.sojourn_p50_ns / 1e3,
            "sojourn_p99_us": metrics.sojourn_p99_ns / 1e3,
            "makespan_ms": metrics.makespan_ns / 1e6,
            "busy_ms": metrics.busy_ns / 1e6,
            "bank_idle_fraction": lanes.bank_idle_fraction,
            "cross_batch_overlap_us": lanes.cross_batch_overlap_ns / 1e3,
        },
    )

    # Acceptance: >= 6x sequential throughput from frontend-shaped batches.
    assert speedup >= 6.0

    # The queueing report carries wait/sojourn percentiles, misses, and
    # rejections — and they are internally consistent.
    assert metrics.sojourn_p99_ns >= metrics.sojourn_p50_ns > 0.0
    assert metrics.wait_p99_ns >= metrics.wait_p50_ns >= 0.0
    assert metrics.offered == NUM_SCANS
    assert metrics.completed + metrics.rejected == metrics.offered
    assert metrics.rejected > 0, "overload must exercise admission control"
    completed = [f for f in futures if f.done()]
    misses = sum(1 for f in completed if f.record.deadline_missed)
    assert metrics.deadline_misses == misses

    # Bit-exact with sequential execution, at identical energy.
    completed_energy = 0.0
    for future in completed:
        request = future.request
        response = future.result()
        expected, plan = request.column.scan(request.kind, *request.constants)
        assert np.array_equal(response.value, expected)
        assert response.matching_rows == int(
            np.unpackbits(expected, bitorder="little")[: request.column.num_rows].sum()
        )
        completed_energy += future.metrics.energy_j
    assert metrics.energy_j == pytest.approx(completed_energy)
    assert metrics.busy_ns <= completed_serial_ns
