"""E5 — Tesseract: near-memory graph processing vs. a conventional server.

Paper claim (Section 3): across five state-of-the-art graph workloads with
large graphs, Tesseract (simple in-order cores in the logic layer of
3D-stacked memory, message-passing programming model) improves average
system performance by 13.8x and reduces average system energy by 87% over a
conventional DDR3-based server.

The benchmark measures the five workloads' per-iteration work profiles on a
synthetic R-MAT graph, scales them to the multi-million-vertex sizes of the
paper's graphs, partitions the graph over 512 vaults (16 cubes x 32 vaults),
and evaluates both system models.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.metrics import arithmetic_mean, geometric_mean
from repro.analysis.tables import ResultTable
from repro.graph.algorithms import (
    average_teenage_follower,
    breadth_first_search,
    pagerank,
    single_source_shortest_paths,
    weakly_connected_components,
)
from repro.graph.generators import rmat
from repro.graph.partition import partition_graph
from repro.stacked.hmc import StackedMemorySystem
from repro.tesseract.baseline import ConventionalGraphSystem
from repro.tesseract.runtime import TesseractSystem

from _bench_utils import emit

#: Measured graph: 2^SCALE vertices, average degree 16 (R-MAT skew).  The
#: profiles are scaled so the logical graph matches the paper's multi-GB
#: inputs (tens of millions of vertices).
GRAPH_SCALE = int(os.environ.get("REPRO_TESSERACT_SCALE", "18"))
SCALE_FACTOR = 64


def _prepare_workloads():
    graph = rmat(GRAPH_SCALE, avg_degree=16, seed=42)
    partition = partition_graph(
        graph, 512, vaults_per_cube=32, strategy="degree_balanced"
    )
    profiles = [
        pagerank(graph, max_iterations=10)[1],
        breadth_first_search(graph)[1],
        single_source_shortest_paths(graph)[1],
        weakly_connected_components(graph, max_iterations=15)[1],
        average_teenage_follower(graph)[1],
    ]
    return graph, partition, profiles


def _run_experiment(graph, partition, profiles):
    tesseract = TesseractSystem(StackedMemorySystem(num_stacks=16))
    baseline = ConventionalGraphSystem()
    table = ResultTable(
        title=(
            "E5: Tesseract vs. DDR3-OoO server "
            f"(R-MAT 2^{GRAPH_SCALE} x{SCALE_FACTOR} scaled, 5 workloads)"
        ),
        columns=["workload", "baseline_ms", "tesseract_ms", "speedup", "energy_reduction_%"],
    )
    speedups, reductions = [], []
    for profile in profiles:
        scaled = profile.scaled(SCALE_FACTOR)
        pim = tesseract.execute(scaled, partition)
        host = baseline.execute(
            graph, scaled, effective_num_vertices=graph.num_vertices * SCALE_FACTOR
        )
        speedup = pim.speedup_over(host)
        reduction = pim.energy_reduction_percent(host)
        speedups.append(speedup)
        reductions.append(reduction)
        table.add_row(
            profile.name, host.time_ns / 1e6, pim.time_ns / 1e6, speedup, reduction
        )
    mean_speedup = geometric_mean(speedups)
    mean_reduction = arithmetic_mean(reductions)
    table.add_row("average", "-", "-", mean_speedup, mean_reduction)
    return table, mean_speedup, mean_reduction


@pytest.mark.benchmark(group="E5-tesseract")
def test_e5_tesseract_speedup_and_energy(benchmark):
    graph, partition, profiles = _prepare_workloads()
    table, mean_speedup, mean_reduction = benchmark.pedantic(
        _run_experiment, args=(graph, partition, profiles), rounds=1, iterations=1
    )
    emit(table)
    emit(
        "paper: 13.8x average speedup, 87% average energy reduction | "
        f"measured: {mean_speedup:.1f}x, {mean_reduction:.1f}%"
    )
    assert 7 < mean_speedup < 25
    assert 78 < mean_reduction < 95
