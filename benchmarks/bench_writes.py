"""Mixed read/write stream: maintenance strategies and the result cache.

PR 7's CSE dies with its batch and PR 9's :class:`~repro.cache.ResultCache`
is the layer between batches — but a cache is only worth its consistency
machinery if it survives *writes*.  This benchmark drives the same
repetition-heavy Zipf conjunction stream as ``bench_optimizer``, now with
one in five requests an :class:`~repro.storage.UpdateRequest` against the
``status`` column, through four modes:

* ``eager_nocache`` — always-consistent planes, no result cache (the
  cache-off baseline);
* ``eager`` / ``lazy`` / ``hybrid`` — the three
  :class:`~repro.storage.MaintenancePolicy` strategies with the result
  cache on.

Every mode serves the identical admitted stream (updates mutate each
mode's own private table/index copy, built from the same seed), so reads
must be **bit-exact across all four modes** — cache hits, column-level
invalidation, epoch-guarded fills, and lazily deferred plane rebuilds
may never change an answer.  After the stream drains, each mode's index
must equal a from-scratch rebuild of its table (the rebuild-equivalence
property, also pinned per-strategy in ``tests/test_storage.py``).

The acceptance bar: cache-on modeled throughput (returned result bytes
over completion makespan) is at least 1.5x cache-off under eager
maintenance,
write service costs are visible in the ledger (non-zero charged latency
and energy for the update records), and the run emits
``BENCH_writes.json`` (schema in ``tools/validate_bench.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import ResultTable
from repro.database.bitmap_index import BitmapIndex
from repro.database.tables import ColumnTable
from repro.service import (
    BatchExecutor,
    BatchPolicy,
    BitmapConjunctionRequest,
    ServiceFrontend,
    poisson_schedule,
)
from repro.storage.requests import UpdateRequest, is_write_request

from _bench_utils import emit, emit_json

BANKS = 8
NUM_ROWS = 65536                # one 8 KiB DRAM row per bitmap
CARDINALITIES = {"region": 16, "status": 8, "channel": 8}
NUM_TEMPLATES = 12              # distinct conjunction shapes in the pool
NUM_REQUESTS = 192
WRITE_FRACTION = 0.2            # one in five requests is an update
WRITE_ROWS = 64                 # rows each update overwrites
WRITE_COLUMN = "status"         # updates touch only this column's planes
ZIPF_S = 1.2                    # template popularity skew
ARRIVAL_RATE_PER_S = 8e6        # well past the sequential service rate
MAX_BATCH = 16

MODES = ("eager_nocache", "eager", "lazy", "hybrid")


def _build_stream(seed: int = 7):
    """One private table/index plus the mixed read/write request stream.

    Called once per mode with the same seed: updates mutate the mode's
    own copy, so every mode sees the identical logical stream against
    identical initial data — the precondition for bit-exact comparison.
    """
    rng = np.random.default_rng(seed)
    table = ColumnTable("orders", NUM_ROWS)
    for name, cardinality in CARDINALITIES.items():
        table.add_column(
            name, rng.integers(0, cardinality, size=NUM_ROWS), cardinality=cardinality
        )
    index = BitmapIndex(table, list(CARDINALITIES))

    columns = list(CARDINALITIES)
    templates = []
    for _ in range(NUM_TEMPLATES):
        picked = rng.choice(len(columns), size=int(rng.integers(2, 4)), replace=False)
        predicates = []
        for c in picked:
            name = columns[c]
            width = int(rng.integers(2, 5))
            values = rng.choice(CARDINALITIES[name], size=width, replace=False)
            predicates.append((name, tuple(int(v) for v in values)))
        templates.append(tuple(predicates))

    weights = 1.0 / np.arange(1, NUM_TEMPLATES + 1) ** ZIPF_S
    weights /= weights.sum()
    draws = rng.choice(NUM_TEMPLATES, size=NUM_REQUESTS, p=weights)
    is_write = rng.random(NUM_REQUESTS) < WRITE_FRACTION
    requests = []
    for position in range(NUM_REQUESTS):
        if is_write[position]:
            row_ids = rng.choice(NUM_ROWS, size=WRITE_ROWS, replace=False)
            values = rng.integers(0, CARDINALITIES[WRITE_COLUMN], size=WRITE_ROWS)
            requests.append(
                UpdateRequest(
                    table=table,
                    index=index,
                    column=WRITE_COLUMN,
                    row_ids=tuple(int(r) for r in row_ids),
                    values=tuple(int(v) for v in values),
                )
            )
        else:
            requests.append(
                BitmapConjunctionRequest(
                    index=index, predicates=templates[draws[position]]
                )
            )
    read_draws = [int(d) for d, w in zip(draws, is_write) if not w]
    duplication_rate = 1.0 - len(set(read_draws)) / max(1, len(read_draws))
    return table, index, requests, duplication_rate


def _run_mode(system, mode: str):
    ambit = system["ambit"]
    table, index, requests, duplication_rate = _build_stream()
    strategy = "eager" if mode == "eager_nocache" else mode
    frontend = ServiceFrontend(
        # sanitize: every dispatch is replayed by the race detector and
        # every lowered write certified by the write-plan lint (cache on
        # adds the cache-consistency lint after each invalidation).
        executor=BatchExecutor(engine=ambit, sanitize=True),
        policy=BatchPolicy(max_batch=MAX_BATCH, window_ns=None),
        max_queue_depth=10 * NUM_REQUESTS,  # unbounded: identical workloads
        cache=(mode != "eager_nocache"),
        maintenance=strategy,
    )
    events = poisson_schedule(requests, rate_per_s=ARRIVAL_RATE_PER_S, seed=11)
    result = frontend.run(events, name=mode)
    metrics = result.metrics
    completed = result.completed()
    # Useful bytes: the response bitmaps the reads actually return.  The
    # read set is identical across modes, so the gain is purely the
    # makespan ratio — per-op traffic accounting (which CSE legitimately
    # shrinks) never dilutes or inflates it.
    result_bytes = sum(
        r.value.nbytes for r in completed if not is_write_request(r.request)
    )
    throughput = result_bytes / (metrics.makespan_ns * 1e-9)
    return {
        "mode": mode,
        "frontend": frontend,
        "table": table,
        "index": index,
        "requests": requests,
        "duplication_rate": duplication_rate,
        "result": result,
        "metrics": metrics,
        "throughput": throughput,
    }


def _run_experiment(system):
    return {mode: _run_mode(system, mode) for mode in MODES}


@pytest.mark.benchmark(group="writes")
def test_result_cache_pays_for_itself_under_writes(benchmark, ddr3_ambit_system):
    outcomes = benchmark(_run_experiment, ddr3_ambit_system)

    duplication_rate = outcomes["eager"]["duplication_rate"]
    table = ResultTable(
        title=(
            f"Mixed Zipf stream ({NUM_REQUESTS} requests, {WRITE_FRACTION:.0%} updates "
            f"on {WRITE_COLUMN!r}, read duplication {duplication_rate:.2f}) on "
            f"{BANKS} banks, batches of {MAX_BATCH}"
        ),
        columns=[
            "mode", "completed", "makespan_ms", "GB/s", "sojourn_p99_us",
            "cache_hits", "invalidations", "rebuilds", "write_us",
        ],
    )
    payload = {
        "duplication_rate": duplication_rate,
        "write_fraction": WRITE_FRACTION,
    }
    for mode in MODES:
        out = outcomes[mode]
        metrics = out["metrics"]
        writes = [
            r for r in out["result"].completed() if is_write_request(r.request)
        ]
        write_latency_ns = sum(r.metrics.latency_ns for r in writes)
        write_energy_j = sum(r.metrics.energy_j for r in writes)
        cache = out["frontend"].cache
        table.add_row(
            mode,
            metrics.completed,
            metrics.makespan_ns / 1e6,
            out["throughput"] / 1e9,
            metrics.sojourn_p99_ns / 1e3,
            metrics.cache_hits,
            metrics.cache_invalidations,
            out["index"].rebuilds,
            write_latency_ns / 1e3,
        )
        payload[mode] = {
            "completed": metrics.completed,
            "rejected": metrics.rejected,
            "batches": metrics.batches,
            "throughput_gb_s": out["throughput"] / 1e9,
            "sojourn_p50_us": metrics.sojourn_p50_ns / 1e3,
            "sojourn_p99_us": metrics.sojourn_p99_ns / 1e3,
            "makespan_ms": metrics.makespan_ns / 1e6,
            "busy_ms": metrics.busy_ns / 1e6,
            "energy_j": metrics.energy_j,
            "writes": len(writes),
            "write_latency_us": write_latency_ns / 1e3,
            "write_energy_j": write_energy_j,
            "rebuilds": out["index"].rebuilds,
            "cache_hits": metrics.cache_hits,
            "cache_misses": metrics.cache_misses,
            "cache_invalidations": metrics.cache_invalidations,
            "cache_fills": cache.fills if cache is not None else 0,
            "cache_bypasses": cache.bypasses if cache is not None else 0,
            "cache_evictions": cache.evictions if cache is not None else 0,
        }
    gain = (
        payload["eager"]["throughput_gb_s"]
        / payload["eager_nocache"]["throughput_gb_s"]
    )
    payload["cache_on_vs_off_throughput"] = gain
    emit(table)
    emit(f"the result cache is {gain:.2f}x the cache-off baseline under writes")
    emit_json("writes", payload)

    # Every mode served the identical admitted stream ...
    for mode in MODES:
        metrics = outcomes[mode]["metrics"]
        assert metrics.rejected == 0
        assert metrics.completed == NUM_REQUESTS

    # ... and answers are bit-exact across all four modes, position by
    # position: cache hits, invalidation, and deferred rebuilds never
    # change a result; updates report identical rows affected.
    reference = outcomes["eager_nocache"]["result"].completed()
    for mode in MODES[1:]:
        for ref, record in zip(reference, outcomes[mode]["result"].completed()):
            if is_write_request(ref.request):
                assert record.value == ref.value
            else:
                assert np.array_equal(record.value, ref.value)

    # Rebuild equivalence: each mode's final index equals a from-scratch
    # rebuild of its (mutated) table — lazy/hybrid repair any still-dirty
    # columns on first read, so reading the planes IS the check.
    for mode in MODES:
        index, mode_table = outcomes[mode]["index"], outcomes[mode]["table"]
        fresh = BitmapIndex(mode_table, list(CARDINALITIES))
        for column, cardinality in CARDINALITIES.items():
            for value in range(cardinality):
                assert np.array_equal(
                    index.bitmap(column, value), fresh.bitmap(column, value)
                ), f"{mode}: plane {column}={value} diverged from rebuild"

    # Write costs are real, visible in the ledger of every mode.
    for mode in MODES:
        assert payload[mode]["writes"] > 0
    assert payload["eager_nocache"]["write_latency_us"] > 0
    assert payload["eager_nocache"]["write_energy_j"] > 0

    # The cache is doing the lifting: hits under write pressure, with
    # invalidations proving consistency work actually happened.
    assert payload["eager"]["cache_hits"] > 0
    assert payload["eager"]["cache_invalidations"] > 0

    # Acceptance: >= 1.5x modeled throughput for cache-on over cache-off
    # on this repetition-heavy mixed stream.
    assert gain >= 1.5
