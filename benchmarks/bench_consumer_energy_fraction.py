"""E6 — Data movement's share of consumer-device system energy.

Paper claim (Section 3): across four widely-used Google consumer workloads
(Chrome, TensorFlow Mobile, VP9 playback, VP9 capture), 62.7% of total
system energy is spent on data movement across the memory hierarchy.
"""

from __future__ import annotations

import pytest

from repro.consumer.analysis import ConsumerStudy

from _bench_utils import emit


def _run_experiment():
    study = ConsumerStudy()
    table = study.energy_fraction_table()
    return table, study.average_data_movement_fraction()


@pytest.mark.benchmark(group="E6-consumer-energy-fraction")
def test_e6_data_movement_energy_fraction(benchmark):
    table, average_fraction = benchmark(_run_experiment)
    emit(table)
    emit(
        "paper: 62.7% of system energy is data movement | "
        f"measured: {average_fraction * 100:.1f}%"
    )
    assert 0.50 < average_fraction < 0.75
