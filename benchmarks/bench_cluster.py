"""Sharded cluster throughput scaling under Poisson overload (1 -> 4 shards).

PR 2's pipeline saturates one device's banks and then queues; the cluster
tier shards columns across N `AmbitEngine`-backed devices behind a
scatter-gather frontend.  Here 32 BitWeaving columns are hash-partitioned
over the shards (8+ columns per shard keep every device's 8 banks busy),
and predicate scans arrive as one Poisson process far past even the
4-shard service capacity, so admission control is exercised at every
shard count.

The acceptance bar: aggregate throughput at 4 shards is at least 3x the
1-shard cluster (near-linear scaling — each shard is its own device, the
router keeps the load balanced, and nothing is shared but the arrival
stream), and cross-shard bitmap conjunctions — scattered into shard-local
OR/AND chains and AND-merged host-side — stay bit-exact with
single-device evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.tables import ResultTable
from repro.api import PimSession
from repro.cluster import ClusterFrontend, ShardRouter
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.service import BatchPolicy, BitmapConjunctionRequest, ScanRequest, poisson_schedule

from _bench_utils import emit, emit_json

NUM_COLUMNS = 32                # 8+ columns per shard at every shard count
ROWS_PER_COLUMN = 65536         # one 8 KiB DRAM row per bit vector
CODE_BITS = 8
NUM_SCANS = 768
ARRIVAL_RATE_PER_S = 16e6       # far past even the 4-shard service rate
MAX_BATCH = 64
MAX_QUEUE_DEPTH = 96            # per shard
DEADLINE_SLACK_NS = 60_000.0
SHARD_COUNTS = (1, 2, 4)
BANKS_PER_SHARD = 8


def _build_scans(seed: int = 7):
    rng = np.random.default_rng(seed)
    columns = [
        BitWeavingColumn(rng.integers(0, 1 << CODE_BITS, size=ROWS_PER_COLUMN), CODE_BITS)
        for _ in range(NUM_COLUMNS)
    ]
    kinds = ("between", "equal", "less_than", "less_equal")
    scans = []
    for index in range(NUM_SCANS):
        column = columns[index % NUM_COLUMNS]
        kind = kinds[(index // NUM_COLUMNS) % len(kinds)]
        if kind == "between":
            low = int(rng.integers(0, 100))
            scans.append((column, kind, (low, low + int(rng.integers(1, 120)))))
        else:
            scans.append((column, kind, (int(rng.integers(0, 1 << CODE_BITS)),)))
    return scans


def _engine_factory():
    return AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=BANKS_PER_SHARD))


def _build_cluster(num_shards: int) -> ClusterFrontend:
    return ClusterFrontend(
        num_shards=num_shards,
        router=ShardRouter(num_shards),
        engine_factory=_engine_factory,
        policy=BatchPolicy(max_batch=MAX_BATCH, window_ns=None),
        max_queue_depth=MAX_QUEUE_DEPTH,
        # sanitize: every shard dispatch, lowered chain, and scatter is
        # certified by repro.verify — the benchmark doubles as its workload.
        sanitize=True,
    )


def _run_experiment():
    scans = _build_scans()
    outcomes = {}
    for num_shards in SHARD_COUNTS:
        # The exact same session loop drives one shard or four — the
        # unified client API is the knob-free part of the scaling story.
        session = PimSession(_build_cluster(num_shards), name=f"cluster_{num_shards}")
        requests = [ScanRequest(column=c, kind=k, constants=cs) for c, k, cs in scans]
        events = poisson_schedule(
            requests,
            rate_per_s=ARRIVAL_RATE_PER_S,
            seed=11,
            deadline_slack_ns=DEADLINE_SLACK_NS,
        )
        futures = session.submit_stream(events)
        session.drain()
        report = session.report()
        completed_bytes = sum(f.metrics.bytes_produced for f in futures if f.done())
        throughput = completed_bytes / (report.makespan_ns * 1e-9)
        outcomes[num_shards] = (session, futures, report, throughput)

    base_throughput = outcomes[SHARD_COUNTS[0]][3]
    table = ResultTable(
        title=(
            f"Poisson overload ({ARRIVAL_RATE_PER_S / 1e6:.0f} M req/s offered) across "
            f"shards of {BANKS_PER_SHARD} banks, {NUM_COLUMNS} hash-partitioned columns"
        ),
        columns=[
            "shards", "completed", "rejected", "makespan_ms", "GB/s", "speedup",
            "util", "imbalance", "p99_sojourn_us",
        ],
    )
    for num_shards in SHARD_COUNTS:
        _session, _futures, report, throughput = outcomes[num_shards]
        metrics = report.details
        table.add_row(
            num_shards,
            metrics.completed,
            metrics.rejected,
            metrics.makespan_ns / 1e6,
            throughput / 1e9,
            throughput / base_throughput,
            metrics.mean_utilization,
            metrics.imbalance,
            metrics.sojourn_p99_ns / 1e3,
        )
    return table, outcomes


def _conjunction_check(seed: int = 13):
    """Scatter-gather conjunctions vs. single-device evaluation."""
    rng = np.random.default_rng(seed)
    rows = 65536
    table = ColumnTable("sales", rows)
    table.add_column("region", rng.integers(0, 8, size=rows), cardinality=8)
    table.add_column("status", rng.integers(0, 4, size=rows), cardinality=4)
    table.add_column("tier", rng.integers(0, 6, size=rows), cardinality=6)
    index = BitmapIndex(table, ["region", "status", "tier"])
    conjunctions = [
        (("region", (1, 2, 3)), ("status", (0, 1)), ("tier", (0, 2, 4))),
        (("region", (0, 4)), ("tier", (1, 3))),
        (("status", (2,)), ("tier", (5,))),
    ]
    session = PimSession(
        ClusterFrontend(
            num_shards=4,
            router=ShardRouter(4),
            engine_factory=_engine_factory,
            policy=BatchPolicy(max_batch=MAX_BATCH),
            max_queue_depth=MAX_QUEUE_DEPTH,
            sanitize=True,
        ),
        name="cluster_conjunctions",
    )
    requests = [BitmapConjunctionRequest(index=index, predicates=c) for c in conjunctions]
    events = poisson_schedule(requests, rate_per_s=1e6, seed=seed)
    futures = session.submit_stream(events)
    checks = []
    for future in futures:
        response = future.result()
        expected, _plan = index.evaluate_conjunction(list(future.request.predicates))
        checks.append(
            (response.details.fanout, bool(np.array_equal(response.value, expected)),
             response.matching_rows)
        )
    return session.report(), checks


@pytest.mark.benchmark(group="cluster")
def test_cluster_throughput_scales_with_shards(benchmark):
    table, outcomes = benchmark(_run_experiment)
    emit(table)

    base_throughput = outcomes[SHARD_COUNTS[0]][3]
    top_throughput = outcomes[SHARD_COUNTS[-1]][3]
    speedup = top_throughput / base_throughput
    emit(f"4-shard aggregate throughput is {speedup:.1f}x the 1-shard cluster")

    # Machine-readable perf trajectory for CI diffing (per shard count).
    payload = {"shard_counts": list(SHARD_COUNTS), "scaling_speedup": speedup}
    for num_shards in SHARD_COUNTS:
        session, _futures, report, throughput = outcomes[num_shards]
        metrics = report.details
        shard_lanes = [
            shard.lane_metrics(f"shard{i}")
            for i, shard in enumerate(session.backend.shards)
        ]
        payload[f"shards_{num_shards}"] = {
            "offered": metrics.offered,
            "completed": metrics.completed,
            "rejected": metrics.rejected,
            "throughput_gb_s": throughput / 1e9,
            "sojourn_p50_us": metrics.sojourn_p50_ns / 1e3,
            "sojourn_p99_us": metrics.sojourn_p99_ns / 1e3,
            "makespan_ms": metrics.makespan_ns / 1e6,
            "busy_ms": metrics.busy_ns / 1e6,
            "mean_utilization": metrics.mean_utilization,
            "imbalance": metrics.imbalance,
            "host_merge_us": metrics.host_merge_ns / 1e3,
            "bank_idle_fraction": (
                sum(l.bank_idle_fraction for l in shard_lanes) / len(shard_lanes)
            ),
            "cross_batch_overlap_us": (
                sum(l.cross_batch_overlap_ns for l in shard_lanes) / 1e3
            ),
        }
    emit_json("cluster", payload)

    # Acceptance: >= 3x aggregate throughput at 4 shards under overload.
    assert speedup >= 3.0

    for num_shards in SHARD_COUNTS:
        metrics = outcomes[num_shards][2].details
        # Overload exercises admission control at every shard count, and
        # the report carries the roll-up the operators would watch.
        assert metrics.rejected > 0, "offered load must exceed cluster capacity"
        assert metrics.completed + metrics.rejected == metrics.offered
        assert metrics.sojourn_p99_ns >= metrics.sojourn_p50_ns > 0.0
        assert len(metrics.per_shard) == num_shards
        assert metrics.imbalance < 1.25, "hash placement must stay balanced"
        assert all(u > 0.5 for u in metrics.utilization)

    # Completed scans are bit-exact with sequential execution.
    sample_futures = outcomes[SHARD_COUNTS[-1]][1]
    for future in [f for f in sample_futures if f.done()][:32]:
        request = future.request
        expected, _ = request.column.scan(request.kind, *request.constants)
        assert np.array_equal(future.result().value, expected)


@pytest.mark.benchmark(group="cluster")
def test_cluster_conjunctions_bit_exact(benchmark):
    report, checks = benchmark(_conjunction_check)
    table = ResultTable(
        title="Cross-shard conjunctions (4 shards): scatter-gather vs single device",
        columns=["conjunction", "fanout", "bit_exact", "matching_rows"],
    )
    for i, (fanout, exact, matching) in enumerate(checks):
        table.add_row(i, fanout, exact, matching)
    emit(table)
    assert all(exact for _, exact, _ in checks)
    # At least one conjunction actually fanned out across shards (the
    # host-side merge path is exercised, not just single-shard routing).
    assert any(fanout > 1 for fanout, _, _ in checks)
    assert report.details.merge_ops > 0
    assert report.details.host_merge_ns > 0.0
    assert report.details.cross_shard_fanout > 1.0
