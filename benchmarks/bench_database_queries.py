"""E4 — End-to-end database queries with bitmap indices / BitWeaving.

Paper claim (Section 2): on real database queries using bitmap indices and
the BitWeaving layout, Ambit reduces query latency by 2x to 12x, with larger
benefits for larger data sets.

The benchmark sweeps the table size and reports the end-to-end latency of a
``SELECT COUNT(*) ... WHERE low <= quantity <= high`` BitWeaving scan (at
~10% selectivity) and of a bitmap-index conjunction, on the host CPU and on
Ambit.  The speedup grows with the table size because the host's bulk
bitwise operations fall out of the last-level cache.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import ResultTable
from repro.api import PimSession
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.queries import QueryEngine
from repro.database.tables import generate_sales_table

from _bench_utils import emit

ROW_COUNTS = (1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000)


def _build_columns():
    """Materialize the swept tables once (the expensive, untimed part)."""
    built = []
    for rows in ROW_COUNTS:
        table = generate_sales_table(rows, seed=7)
        built.append(
            {
                "rows": rows,
                "quantity": BitWeavingColumn.from_table(table, "quantity"),
                "index": BitmapIndex(table, ["region"]) if rows <= 4_000_000 else None,
            }
        )
    return built


def _run_experiment(columns):
    # The same workload submitted to two session backends: the serial
    # host tier and the single-device Ambit service tier.  One cost model
    # (`coster`) prices the shared host epilogue on both.
    coster = QueryEngine()
    host = PimSession.over_host(coster=coster)
    service = PimSession.over_service(engine=coster.ambit, coster=coster)
    table = ResultTable(
        title="E4: BitWeaving range-count query latency (ms), CPU vs. Ambit",
        columns=["rows", "cpu_ms", "ambit_ms", "speedup"],
    )
    speedups = []
    for entry in columns:
        column = entry["quantity"]
        cpu = host.range_count(column, 32, 57).result()
        ambit = service.range_count(column, 32, 57).result()
        assert cpu.matching_rows == ambit.matching_rows
        speedup = cpu.latency_ns / ambit.latency_ns
        speedups.append(speedup)
        table.add_row(entry["rows"], cpu.latency_ns / 1e6, ambit.latency_ns / 1e6, speedup)

    bitmap_table = ResultTable(
        title="E4: bitmap-index conjunction query latency (ms), CPU vs. Ambit",
        columns=["rows", "cpu_ms", "ambit_ms", "speedup"],
    )
    for entry in columns:
        if entry["index"] is None:
            continue
        predicates = [("region", [0, 1, 2])]
        cpu = host.conjunction(entry["index"], predicates).result()
        ambit = service.conjunction(entry["index"], predicates).result()
        bitmap_table.add_row(
            entry["rows"], cpu.latency_ns / 1e6, ambit.latency_ns / 1e6, cpu.latency_ns / ambit.latency_ns
        )
    service.close()
    return table, bitmap_table, speedups


@pytest.mark.benchmark(group="E4-database-queries")
def test_e4_query_latency_reduction(benchmark):
    columns = _build_columns()
    table, bitmap_table, speedups = benchmark.pedantic(
        _run_experiment, args=(columns,), rounds=1, iterations=1
    )
    emit(table)
    emit(bitmap_table)
    emit(
        "paper: 2x-12x query latency reduction, growing with data set size | "
        f"measured: {speedups[0]:.1f}x at {ROW_COUNTS[0]} rows -> "
        f"{speedups[-1]:.1f}x at {ROW_COUNTS[-1]} rows"
    )
    # Shape checks: small tables see a modest win, large tables see ~10x, and
    # the benefit grows monotonically with the table size.
    assert 1.3 < speedups[0] < 4
    assert 8 < speedups[-1] < 20
    assert all(a <= b * 1.05 for a, b in zip(speedups, speedups[1:]))
