"""Tests for repro.database (tables, bitmap index, BitWeaving, queries)."""

import numpy as np
import pytest

from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.queries import QueryEngine, ScanBackend
from repro.database.tables import ColumnTable, generate_sales_table


@pytest.fixture(scope="module")
def table() -> ColumnTable:
    return generate_sales_table(50_000, seed=11)


class TestColumnTable:
    def test_generated_columns(self, table):
        assert table.num_rows == 50_000
        assert set(table.columns) == {"region", "product", "quantity", "discount"}
        assert table.cardinalities["region"] == 16
        assert table.column("region").max() < 16

    def test_column_bits(self, table):
        assert table.column_bits("region") == 4
        assert table.column_bits("quantity") == 8

    def test_describe(self, table):
        assert "sales" in table.describe()

    def test_add_column_validation(self):
        table = ColumnTable("t", 10)
        with pytest.raises(ValueError):
            table.add_column("c", np.zeros(5, dtype=np.int64))
        with pytest.raises(TypeError):
            table.add_column("c", np.zeros(10))
        with pytest.raises(ValueError):
            table.add_column("c", np.full(10, -1, dtype=np.int64))
        with pytest.raises(KeyError):
            table.column("missing")

    def test_invalid_row_count(self):
        with pytest.raises(ValueError):
            generate_sales_table(0)

    def test_zipf_skew(self, table):
        counts = np.bincount(table.column("region"), minlength=16)
        assert counts[0] > counts[8]


class TestBitmapIndex:
    def test_bitmaps_partition_the_rows(self, table):
        index = BitmapIndex(table, ["region"])
        total = sum(
            BitmapIndex.count(index.bitmap("region", value), table.num_rows)
            for value in range(16)
        )
        assert total == table.num_rows

    def test_in_predicate_matches_reference(self, table):
        index = BitmapIndex(table, ["region"])
        result, plan = index.evaluate_in("region", [1, 3])
        expected = int(np.isin(table.column("region"), [1, 3]).sum())
        assert BitmapIndex.count(result, table.num_rows) == expected
        assert plan.total_operations == 1  # one OR

    def test_conjunction_matches_reference(self, table):
        index = BitmapIndex(table, ["region", "product"])
        predicates = [("region", [0, 1]), ("product", [2, 3, 4])]
        result, plan = index.evaluate_conjunction(predicates)
        codes_region = table.column("region")
        codes_product = table.column("product")
        expected = int(
            (np.isin(codes_region, [0, 1]) & np.isin(codes_product, [2, 3, 4])).sum()
        )
        assert BitmapIndex.count(result, table.num_rows) == expected
        assert plan.total_operations == 1 + 2 + 1  # ORs within columns + final AND

    def test_empty_predicates_rejected(self, table):
        index = BitmapIndex(table, ["region"])
        with pytest.raises(ValueError):
            index.evaluate_in("region", [])
        with pytest.raises(ValueError):
            index.evaluate_conjunction([])
        with pytest.raises(KeyError):
            index.bitmap("region", 99)

    def test_storage_and_bulk_vectors(self, table):
        index = BitmapIndex(table, ["region"])
        assert index.storage_bytes() == 16 * ((table.num_rows + 7) // 8)
        vectors = index.as_bulk_vectors("region")
        assert len(vectors) == 16
        assert vectors[0].num_bits == table.num_rows


class TestBitWeaving:
    @pytest.fixture(scope="class")
    def column(self, table):
        return BitWeavingColumn.from_table(table, "quantity")

    def test_plane_count_and_storage(self, column, table):
        assert column.num_bits == 8
        assert len(column.planes) == 8
        assert column.storage_bytes() == 8 * ((table.num_rows + 7) // 8)

    @pytest.mark.parametrize("constant", [0, 1, 37, 128, 255])
    def test_less_than_matches_reference(self, column, table, constant):
        codes = table.column("quantity")
        result, _ = column.scan_less_than(constant)
        expected = column.reference_scan(codes, lambda c: c < constant)
        assert np.array_equal(result, expected)

    @pytest.mark.parametrize("constant", [0, 5, 100, 255])
    def test_equal_matches_reference(self, column, table, constant):
        codes = table.column("quantity")
        result, _ = column.scan_equal(constant)
        expected = column.reference_scan(codes, lambda c: c == constant)
        assert np.array_equal(result, expected)

    def test_less_equal_and_range(self, column, table):
        codes = table.column("quantity")
        result, _ = column.scan_less_equal(99)
        assert np.array_equal(result, column.reference_scan(codes, lambda c: c <= 99))
        result, _ = column.scan_range(32, 96)
        assert np.array_equal(
            result, column.reference_scan(codes, lambda c: (c >= 32) & (c <= 96))
        )

    def test_range_validation(self, column):
        with pytest.raises(ValueError):
            column.scan_range(10, 5)
        with pytest.raises(ValueError):
            column.scan_less_than(256)

    def test_plan_reports_operations(self, column):
        _, plan = column.scan_less_than(37)
        assert plan.total_operations > 0
        assert plan.planes_touched == 8
        assert set(plan.operations) <= {"and", "or", "not"}

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BitWeavingColumn(np.array([4]), num_bits=2)
        with pytest.raises(ValueError):
            BitWeavingColumn(np.array([-1]), num_bits=4)
        with pytest.raises(ValueError):
            BitWeavingColumn(np.array([[1, 2]]), num_bits=4)


class TestQueryEngine:
    def test_backends_agree_on_result(self, table):
        column = BitWeavingColumn.from_table(table, "quantity")
        engine = QueryEngine()
        cpu = engine.range_count_query(column, 32, 96, ScanBackend.CPU)
        ambit = engine.range_count_query(column, 32, 96, ScanBackend.AMBIT)
        assert cpu.matching_rows == ambit.matching_rows
        expected = int(((table.column("quantity") >= 32) & (table.column("quantity") <= 96)).sum())
        assert cpu.matching_rows == expected

    def test_ambit_scan_is_faster_for_large_tables(self):
        table = generate_sales_table(8_000_000, seed=1)
        column = BitWeavingColumn.from_table(table, "quantity")
        engine = QueryEngine()
        cpu = engine.range_count_query(column, 32, 57, ScanBackend.CPU)
        ambit = engine.range_count_query(column, 32, 57, ScanBackend.AMBIT)
        assert ambit.latency_ns < cpu.latency_ns
        assert cpu.latency_ns / ambit.latency_ns > 3

    def test_speedup_grows_with_table_size(self):
        engine = QueryEngine()
        speedups = []
        for rows in (500_000, 4_000_000, 16_000_000):
            table = generate_sales_table(rows, seed=2)
            column = BitWeavingColumn.from_table(table, "quantity")
            cpu = engine.range_count_query(column, 32, 57, ScanBackend.CPU)
            ambit = engine.range_count_query(column, 32, 57, ScanBackend.AMBIT)
            speedups.append(cpu.latency_ns / ambit.latency_ns)
        assert speedups[0] < speedups[1] < speedups[2]

    def test_bitmap_conjunction_query(self, table):
        index = BitmapIndex(table, ["region", "product"])
        engine = QueryEngine()
        predicates = [("region", [0, 1]), ("product", [0, 1, 2])]
        cpu = engine.bitmap_conjunction_query(index, predicates, ScanBackend.CPU)
        ambit = engine.bitmap_conjunction_query(index, predicates, ScanBackend.AMBIT)
        assert cpu.matching_rows == ambit.matching_rows
        assert cpu.breakdown["scan_ns"] > 0
        assert ambit.breakdown["epilogue_ns"] == pytest.approx(cpu.breakdown["epilogue_ns"])

    def test_epilogue_scales_with_selectivity(self, table):
        engine = QueryEngine()
        low = engine.epilogue_cost(table.num_rows, matching_rows=100)
        high = engine.epilogue_cost(table.num_rows, matching_rows=40_000)
        assert high.latency_ns > low.latency_ns
