"""API-surface snapshot for `repro.api`.

The exported names of the unified client API are the repo's stable
surface: examples, benchmarks, and every future scenario PR program
against them.  This snapshot makes surface changes *deliberate* — adding
a name means extending the snapshot in the same PR; losing one is a
breaking change the suite catches immediately.
"""

import repro.api as api

#: The pinned public surface.  Keep sorted; update deliberately.
EXPECTED_EXPORTS = [
    "AppendSpec",
    "Backend",
    "ClusterDetails",
    "ConjunctionSpec",
    "DeleteSpec",
    "Future",
    "HostBackend",
    "HostDetails",
    "PimSession",
    "QuerySpec",
    "RequestFailed",
    "RequestRejected",
    "Response",
    "ResponseDetails",
    "SCAN_KINDS",
    "ScanSpec",
    "ServiceDetails",
    "SessionReport",
    "ShardUnavailable",
    "UpdateSpec",
    "WriteSpec",
    "lower_conjunction_steps",
    "range_count_spec",
    "spec_for_request",
]


def test_api_exports_match_snapshot():
    assert sorted(api.__all__) == EXPECTED_EXPORTS


def test_every_export_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_session_surface_is_stable():
    """The PimSession methods callers rely on (a minimal shape check, so
    a rename shows up here and not in a downstream example)."""
    for method in (
        "scan",
        "range_count",
        "conjunction",
        "append",
        "update",
        "delete",
        "submit",
        "submit_stream",
        "advance_to",
        "drain",
        "close",
        "report",
        "responses",
        "over_service",
        "over_cluster",
        "over_host",
    ):
        assert callable(getattr(api.PimSession, method)), method


def test_future_and_response_surface_is_stable():
    for attr in ("done", "result", "response", "status", "metrics"):
        assert hasattr(api.Future, attr), attr
    response_fields = set(api.Response.__dataclass_fields__)
    assert {
        "kind",
        "status",
        "value",
        "matching_rows",
        "latency_ns",
        "energy_j",
        "breakdown",
        "wait_ns",
        "sojourn_ns",
        "deadline_missed",
        "details",
    } <= response_fields
