"""Tests for the unified client API (`repro.api`).

The load-bearing acceptance property: one seeded mixed workload (scans +
conjunctions + range counts) submitted through :class:`PimSession`
returns bit-exact results and a consistent :class:`Response` shape
whether the backend is a single-device :class:`ServiceFrontend`, an
N-shard :class:`ClusterFrontend`, or the serial :class:`HostBackend`.
Around it: the ``Backend`` protocol surface, future semantics
(rejection, windowed sessions, lazy drain), the host-side gather merge
cost, and the deprecation shims over the legacy ``QueryEngine`` entry
points.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.api import (
    Backend,
    ClusterDetails,
    ConjunctionSpec,
    HostBackend,
    HostDetails,
    PimSession,
    RequestRejected,
    ScanSpec,
    ServiceDetails,
    lower_conjunction_steps,
    spec_for_request,
)
from repro.cluster import ClusterFrontend, ShardRouter
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.queries import QueryEngine, ScanBackend
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.service import (
    BatchExecutor,
    BatchPolicy,
    RetryClient,
    ScanRequest,
    ServiceFrontend,
    poisson_schedule,
)


def _device(banks: int = 4) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=32,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine(banks: int = 4) -> AmbitEngine:
    return AmbitEngine(
        _device(banks), AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _service_session(**kwargs) -> PimSession:
    return PimSession(
        ServiceFrontend(executor=BatchExecutor(engine=_engine()), **kwargs)
    )


def _cluster_session(num_shards: int, **kwargs) -> PimSession:
    kwargs.setdefault("engine_factory", lambda: _engine())
    kwargs.setdefault("policy", BatchPolicy(max_batch=3))
    return PimSession(ClusterFrontend(num_shards=num_shards, **kwargs))


def _random_column(rng, num_bits: int = 6, rows: int = 200) -> BitWeavingColumn:
    return BitWeavingColumn(rng.integers(0, 1 << num_bits, size=rows), num_bits)


def _bitmap_index(rng, rows: int = 400) -> BitmapIndex:
    table = ColumnTable("t", rows)
    table.add_column("region", rng.integers(0, 8, size=rows), cardinality=8)
    table.add_column("status", rng.integers(0, 4, size=rows), cardinality=4)
    table.add_column("tier", rng.integers(0, 3, size=rows), cardinality=3)
    return BitmapIndex(table, ["region", "status", "tier"])


def _mixed_workload(session: PimSession, columns, index, constants, num_bits):
    """Submit the canonical seeded mix: scans + range counts + conjunctions."""
    kinds = ["less_than", "less_equal", "equal"]
    futures = []
    for i, constant in enumerate(constants):
        constant %= 1 << num_bits
        column = columns[i % len(columns)]
        if i % 3 == 2:
            high = max(constant, (1 << num_bits) - 1 - constant)
            futures.append(session.range_count(column, min(constant, high), high))
        else:
            futures.append(session.scan(column, kinds[i % len(kinds)], constant))
    futures.append(
        session.conjunction(index, [("region", (1, 2, 3)), ("status", (0, 1)), ("tier", (0, 2))])
    )
    futures.append(session.conjunction(index, [("region", (0,)), ("tier", (1,))]))
    return futures


class TestBackendProtocol:
    def test_all_tiers_speak_the_protocol(self):
        assert isinstance(ServiceFrontend(executor=BatchExecutor(engine=_engine())), Backend)
        assert isinstance(
            ClusterFrontend(num_shards=2, engine_factory=lambda: _engine()), Backend
        )
        assert isinstance(HostBackend(), Backend)

    @settings(max_examples=10, deadline=None)
    @given(
        num_shards=st.sampled_from([1, 2, 4]),
        num_bits=st.integers(2, 6),
        rows=st.integers(20, 300),
        seed=st.integers(0, 2**16),
        constants=st.lists(st.integers(0, 63), min_size=1, max_size=5),
    )
    def test_service_and_cluster_sessions_bit_exact(
        self, num_shards, num_bits, rows, seed, constants
    ):
        """Acceptance: the same seeded mixed workload through PimSession
        over a ServiceFrontend and over an N-shard ClusterFrontend returns
        bit-exact values and consistent Response metadata."""
        rng = np.random.default_rng(seed)
        columns = [_random_column(rng, num_bits, rows) for _ in range(3)]
        index = _bitmap_index(rng, rows=rows)

        service = _service_session(policy=BatchPolicy(max_batch=3))
        cluster = _cluster_session(
            num_shards, router=ShardRouter(num_shards, replication_factor=1)
        )
        service_futures = _mixed_workload(service, columns, index, constants, num_bits)
        cluster_futures = _mixed_workload(cluster, columns, index, constants, num_bits)

        for sf, cf in zip(service_futures, cluster_futures):
            sr, cr = sf.result(), cf.result()
            assert sr.status == cr.status == "completed"
            assert sr.kind == cr.kind
            assert np.array_equal(sr.value, cr.value)
            assert sr.matching_rows == cr.matching_rows
            # The host epilogue prices identically on both tiers; the scan
            # side may differ only for scattered conjunctions (device ANDs
            # replaced by host merges).
            assert sr.breakdown["epilogue_ns"] == pytest.approx(cr.breakdown["epilogue_ns"])
            if sr.kind != "conjunction":
                assert sr.breakdown["scan_ns"] == pytest.approx(cr.breakdown["scan_ns"])
                assert sr.energy_j == pytest.approx(cr.energy_j)
            assert isinstance(sr.details, ServiceDetails)
            assert isinstance(cr.details, ClusterDetails)
            assert 1 <= cr.details.fanout <= num_shards

        service_report = service.report()
        cluster_report = cluster.report()
        assert service_report.tier == "service"
        assert cluster_report.tier == "cluster"
        assert service_report.completed == cluster_report.completed == len(service_futures)
        assert service_report.rejected == cluster_report.rejected == 0
        assert cluster_report.details.shards == num_shards

    def test_host_session_matches_service_values(self):
        rng = np.random.default_rng(3)
        columns = [_random_column(rng) for _ in range(3)]
        index = _bitmap_index(rng)
        host = PimSession.over_host()
        service = _service_session()
        for session in (host, service):
            _mixed_workload(session, columns, index, [5, 17, 40], 6)
        for hf, sf in zip(host.futures, service.futures):
            hr, sr = hf.response(), sf.response()
            assert np.array_equal(hr.value, sr.value)
            assert hr.matching_rows == sr.matching_rows
            assert isinstance(hr.details, HostDetails)
        assert host.report().tier == "host"
        assert host.report().completed == len(host.futures)


class TestFutureSemantics:
    def test_result_drains_lazily(self):
        rng = np.random.default_rng(4)
        session = _service_session(policy=BatchPolicy(max_batch=8))
        future = session.scan(_random_column(rng), "less_than", 9)
        assert not future.done()
        assert future.status == "queued"
        response = future.result()  # drains the backend
        assert future.done() and future.status == "completed"
        expected, _ = future.request.column.scan("less_than", 9)
        assert np.array_equal(response.value, expected)
        assert response.latency_ns == pytest.approx(
            response.breakdown["scan_ns"] + response.breakdown["epilogue_ns"]
        )
        assert response.sojourn_ns == pytest.approx(future.sojourn_ns)

    def test_rejected_future_raises(self):
        rng = np.random.default_rng(5)
        session = _service_session(max_queue_depth=1)
        kept = session.scan(_random_column(rng), "less_than", 3)
        refused = session.scan(_random_column(rng), "less_than", 3)
        assert refused.status == "rejected"
        with pytest.raises(RequestRejected) as excinfo:
            refused.result()
        assert excinfo.value.reason == "queue_full"
        assert refused.response().status == "rejected"
        assert kept.result().status == "completed"

    def test_windowed_reports_on_a_shared_backend(self):
        """Two sessions over one frontend report only their own traffic —
        counts AND time-based fields (makespan, busy, batches)."""
        rng = np.random.default_rng(6)
        frontend = ServiceFrontend(executor=BatchExecutor(engine=_engine()))
        first = PimSession(frontend, name="first")
        first.scan(_random_column(rng), "less_than", 7)
        first.drain()
        first_report = first.report()
        second = PimSession(frontend, name="second")
        for _ in range(4):
            second.scan(_random_column(rng), "equal", 7)
        second.drain()
        assert first_report.offered == 1
        assert second.report().offered == 4
        assert second.report().completed == 4
        assert frontend.result().metrics.completed == 5
        # Session B's traffic never leaks into A's time-based fields: a
        # report taken *after* B ran equals the one taken before.
        late_first_report = first.report()
        assert late_first_report.busy_ns == pytest.approx(first_report.busy_ns)
        assert late_first_report.makespan_ns == pytest.approx(first_report.makespan_ns)
        assert late_first_report.details.batches == first_report.details.batches == 1
        # And B's window starts at its own clock origin, excluding A.
        own_record = second.futures[0].record
        assert second.report().busy_ns == pytest.approx(
            sum(
                frontend.batches[i].metrics.latency_ns
                for i in {f.record.batch_index for f in second.futures}
            )
        )
        assert second.report().makespan_ns == pytest.approx(
            max(f.record.finish_ns for f in second.futures) - own_record.arrival_ns
        )

    def test_interleaved_sessions_apportion_shared_batches(self):
        """Two sessions whose requests land in ONE batch split its busy
        time instead of each counting the batch in full."""
        rng = np.random.default_rng(61)
        frontend = ServiceFrontend(
            executor=BatchExecutor(engine=_engine()), policy=BatchPolicy(max_batch=64)
        )
        first = PimSession(frontend, name="first")
        second = PimSession(frontend, name="second")
        for _ in range(2):
            first.scan(_random_column(rng), "less_than", 9)
            second.scan(_random_column(rng), "equal", 3)
        frontend.drain()  # one shared batch serves all four scans
        assert len(frontend.batches) == 1
        total = frontend.busy_ns
        split = first.report().busy_ns + second.report().busy_ns
        assert split == pytest.approx(total)
        assert 0.0 < first.report().busy_ns < total

    def test_windowed_reports_on_a_shared_cluster(self):
        """The cluster tier windows both report ends too: another
        session's traffic moves neither makespan nor busy time."""
        rng = np.random.default_rng(60)
        cluster = ClusterFrontend(
            num_shards=2, engine_factory=lambda: _engine(), policy=BatchPolicy(max_batch=2)
        )
        first = PimSession(cluster, name="first")
        first.scan(_random_column(rng), "less_than", 9)
        first.drain()
        first_report = first.report()
        second = PimSession(cluster, name="second")
        for _ in range(4):
            second.scan(_random_column(rng), "equal", 3)
        second.drain()
        late_first_report = first.report()
        assert late_first_report.offered == 1
        assert late_first_report.busy_ns == pytest.approx(first_report.busy_ns)
        assert late_first_report.makespan_ns == pytest.approx(first_report.makespan_ns)
        assert second.report().offered == 4
        assert second.report().makespan_ns < cluster.clock_ns

    def test_submit_stream_and_raw_requests(self):
        rng = np.random.default_rng(7)
        session = _service_session(policy=BatchPolicy(max_batch=2))
        requests = [
            ScanRequest(column=_random_column(rng), kind="less_than", constants=(c,))
            for c in (3, 9, 30)
        ]
        futures = session.submit_stream(poisson_schedule(requests, rate_per_s=1e6, seed=7))
        responses = session.responses()
        assert len(responses) == len(futures) == len(requests)
        for request, response in zip(requests, responses):
            expected, _ = request.column.scan(request.kind, *request.constants)
            assert np.array_equal(response.value, expected)
            assert response.kind == "scan"

    def test_retry_client_accepts_a_session(self):
        rng = np.random.default_rng(8)
        session = _service_session(
            max_queue_depth=2, policy=BatchPolicy(max_batch=2)
        )
        requests = [
            ScanRequest(column=_random_column(rng), kind="less_than", constants=(c,))
            for c in range(8)
        ]
        events = poisson_schedule(requests, rate_per_s=1e9, seed=8)
        outcome = RetryClient(session).run(events)
        assert outcome.delivered > 0
        assert outcome.result.metrics.completed == outcome.delivered


class TestPlanIR:
    def test_specs_validate(self):
        rng = np.random.default_rng(9)
        column = _random_column(rng)
        with pytest.raises(ValueError):
            ScanSpec(column=column, kind="nope", constants=(1,))
        with pytest.raises(ValueError):
            ScanSpec(column=column, kind="between", constants=(1,))
        with pytest.raises(ValueError):
            ConjunctionSpec(index=_bitmap_index(rng), predicates=())
        with pytest.raises(TypeError):
            spec_for_request(object())

    def test_spec_round_trip_preserves_requests(self):
        rng = np.random.default_rng(10)
        column = _random_column(rng)
        spec = ScanSpec(column=column, kind="between", constants=(3, 17))
        request = spec.to_request()
        assert spec_for_request(request) == spec
        expected, _ = spec.evaluate()
        got, _ = request.scan_result()
        assert np.array_equal(got, expected)

    def test_shared_lowering_matches_evaluate_on_index_and_view(self):
        """One code path: the IR lowers a full index and a shard view
        identically, and the chain's final vector equals evaluate()."""
        rng = np.random.default_rng(11)
        index = _bitmap_index(rng)
        predicates = [("region", (1, 2)), ("status", (0, 1))]
        expected, plan = index.evaluate_conjunction(predicates)
        for source in (index, index.shard_view(["region", "status"])):
            steps, result, lowered_plan = lower_conjunction_steps(
                source, predicates, row_size_bytes=64
            )
            assert lowered_plan.total_operations == plan.total_operations
            for op, a, b, out in steps:
                np_op = np.bitwise_or if op == "or" else np.bitwise_and
                out.data[:] = np_op(a.data, b.data)
            packed = (index.num_rows + 7) // 8
            assert np.array_equal(result.data[:packed], expected)

    def test_view_lowering_stays_local(self):
        rng = np.random.default_rng(12)
        index = _bitmap_index(rng)
        view = index.shard_view(["region"])
        with pytest.raises(KeyError):
            lower_conjunction_steps(view, [("status", (0,))])


class TestGatherMergeCost:
    def test_scattered_conjunction_charges_host_merges(self):
        rng = np.random.default_rng(13)
        index = _bitmap_index(rng)
        # One indexed column per shard: the conjunction must scatter.
        cluster = ClusterFrontend(
            num_shards=3,
            router=ShardRouter(3, strategy="range"),
            engine_factory=lambda: _engine(),
        )
        cluster.router.register_names(index.indexed_columns())
        session = PimSession(cluster)
        future = session.conjunction(
            index, [("region", (1, 2)), ("status", (0, 1)), ("tier", (0,))]
        )
        response = future.result()
        details = response.details
        assert details.fanout == 3
        assert details.host_merge_ns == pytest.approx(2 * cluster.merge_ns_per_op)
        assert cluster.merge_ns_per_op > 0.0
        # The merge is charged into completion: the gathered finish is
        # strictly later than the last shard part's device finish.
        record = future.record
        last_part_finish = max(p.finish_ns for p in record.parts)
        assert record.finish_ns == pytest.approx(last_part_finish + details.host_merge_ns)
        report = session.report()
        assert report.details.merge_ops == 2
        assert report.details.host_merge_ns == pytest.approx(details.host_merge_ns)
        # The stream is not over until the host has merged: the makespan
        # covers the gathered finish, so sojourns never exceed it.
        assert report.makespan_ns >= record.finish_ns
        assert report.sojourn_p99_ns <= report.makespan_ns + 1e-9

    def test_merge_cost_knob_can_be_disabled(self):
        rng = np.random.default_rng(14)
        index = _bitmap_index(rng)
        cluster = ClusterFrontend(
            num_shards=3,
            router=ShardRouter(3, strategy="range"),
            engine_factory=lambda: _engine(),
            merge_ns_per_op=0.0,
        )
        cluster.router.register_names(index.indexed_columns())
        session = PimSession(cluster)
        future = session.conjunction(
            index, [("region", (1,)), ("status", (0,)), ("tier", (0,))]
        )
        future.result()
        record = future.record
        assert record.host_merge_ns == 0.0
        assert record.finish_ns == pytest.approx(max(p.finish_ns for p in record.parts))
        with pytest.raises(ValueError):
            ClusterFrontend(num_shards=2, engine_factory=lambda: _engine(), merge_ns_per_op=-1.0)


class TestDeprecationShims:
    """The six legacy QueryEngine entry points still pass — and warn."""

    @pytest.fixture
    def query_engine(self):
        return QueryEngine(ambit=_engine())

    @pytest.fixture
    def column(self):
        return _random_column(np.random.default_rng(15), 8, 400)

    def test_range_count_query_warns_and_matches_session(self, query_engine, column):
        with pytest.warns(DeprecationWarning, match="range_count_query"):
            legacy = query_engine.range_count_query(column, 20, 180, ScanBackend.AMBIT)
        session = PimSession(
            ServiceFrontend(executor=BatchExecutor(engine=_engine())), coster=query_engine
        )
        response = session.range_count(column, 20, 180).result()
        assert legacy.matching_rows == response.matching_rows
        assert legacy.latency_ns == pytest.approx(response.latency_ns)
        assert legacy.energy_j == pytest.approx(response.energy_j)

    def test_range_count_query_cpu_matches_plan_model(self, query_engine, column):
        with pytest.warns(DeprecationWarning):
            legacy = query_engine.range_count_query(column, 20, 180, ScanBackend.CPU)
        expected, plan = column.scan_range(20, 180)
        reference = query_engine.execute_scan(
            expected, plan, column.num_rows, ScanBackend.CPU
        )
        assert legacy.matching_rows == reference.matching_rows
        assert legacy.latency_ns == pytest.approx(reference.latency_ns)
        assert legacy.energy_j == pytest.approx(reference.energy_j)

    def test_bitmap_conjunction_query_warns(self, query_engine):
        index = _bitmap_index(np.random.default_rng(16))
        predicates = [("region", [1, 2]), ("status", [0])]
        with pytest.warns(DeprecationWarning, match="bitmap_conjunction_query"):
            cpu = query_engine.bitmap_conjunction_query(index, predicates, ScanBackend.CPU)
        with pytest.warns(DeprecationWarning):
            ambit = query_engine.bitmap_conjunction_query(index, predicates, ScanBackend.AMBIT)
        expected, _ = index.evaluate_conjunction(predicates)
        assert cpu.matching_rows == ambit.matching_rows == BitmapIndex.count(
            expected, index.num_rows
        )

    def test_scan_query_batch_warns_and_stays_bit_exact(self, query_engine):
        rng = np.random.default_rng(17)
        scans = [(_random_column(rng), "less_than", (c,)) for c in (5, 20, 40)]
        with pytest.warns(DeprecationWarning, match="scan_query_batch"):
            batch = query_engine.scan_query_batch(scans, ScanBackend.AMBIT)
        assert len(batch.results) == len(scans)
        assert batch.batching_speedup >= 1.0
        for (column, kind, constants), result in zip(scans, batch.results):
            expected, plan = column.scan(kind, *constants)
            assert result.matching_rows == BitmapIndex.count(expected, column.num_rows)
            sequential = query_engine.ambit_scan_cost(plan)
            assert result.breakdown["scan_ns"] == pytest.approx(sequential.latency_ns)

    def test_range_count_query_batch_warns(self, query_engine):
        rng = np.random.default_rng(18)
        ranges = [(_random_column(rng), 5, 40) for _ in range(3)]
        with pytest.warns(DeprecationWarning, match="range_count_query_batch"):
            batch = query_engine.range_count_query_batch(ranges, ScanBackend.AMBIT)
        assert len(batch.results) == 3

    def test_scan_query_pipeline_warns(self, query_engine):
        rng = np.random.default_rng(19)
        scans = [(_random_column(rng), "equal", (7,)) for _ in range(3)]
        with pytest.warns(DeprecationWarning, match="scan_query_pipeline"):
            batch, metrics = query_engine.scan_query_pipeline(
                scans, ScanBackend.AMBIT, rate_per_s=1e6, seed=1
            )
        assert metrics.completed == len(scans)
        assert batch.request_indices == list(range(len(scans)))

    def test_bitmap_conjunction_query_batch_warns(self, query_engine):
        index = _bitmap_index(np.random.default_rng(20))
        conjunctions = [[("region", [1, 2]), ("status", [0])], [("tier", [1])]]
        with pytest.warns(DeprecationWarning, match="bitmap_conjunction_query_batch"):
            batch = query_engine.bitmap_conjunction_query_batch(
                index, conjunctions, ScanBackend.AMBIT
            )
        for predicates, result in zip(conjunctions, batch.results):
            expected, _ = index.evaluate_conjunction(predicates)
            assert result.matching_rows == BitmapIndex.count(expected, index.num_rows)

    def test_internal_callers_of_shims_fail(self):
        """The CI guard: a legacy-entry-point DeprecationWarning raised
        from inside repro.* (an internal straggler) is an error, while
        the same warning from a test/user module — and unrelated
        deprecations from repro frames — stay warnings."""
        import warnings as w

        message = "QueryEngine.range_count_query is deprecated; use ..."
        with w.catch_warnings():
            w.filterwarnings(
                "error",
                message=r"QueryEngine\..+ is deprecated",
                category=DeprecationWarning,
                module=r"repro\..*",
            )
            # Same message from a non-repro caller: warning only.
            w.warn(message, DeprecationWarning)
            repro_frame = {"__name__": "repro.fake_module", "message": message}
            # Unrelated deprecation from a repro frame: warning only.
            exec("import warnings; warnings.warn('x', DeprecationWarning)", dict(repro_frame))
            # Legacy-entry-point warning from a repro frame: error.
            with pytest.raises(DeprecationWarning):
                exec(
                    "import warnings; warnings.warn(message, DeprecationWarning)",
                    repro_frame,
                )
