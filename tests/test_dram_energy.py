"""Tests for repro.dram.energy."""

import pytest

from repro.dram.energy import DramEnergyParameters, EnergyBreakdown


class TestEnergyBreakdown:
    def test_total_sums_all_components(self):
        breakdown = EnergyBreakdown(
            activation_j=1.0, read_j=2.0, write_j=3.0, io_j=4.0, refresh_j=5.0, background_j=6.0
        )
        assert breakdown.total_j == pytest.approx(21.0)

    def test_add_is_elementwise(self):
        a = EnergyBreakdown(activation_j=1.0, read_j=2.0)
        b = EnergyBreakdown(activation_j=0.5, io_j=1.5)
        combined = a.add(b)
        assert combined.activation_j == pytest.approx(1.5)
        assert combined.read_j == pytest.approx(2.0)
        assert combined.io_j == pytest.approx(1.5)
        # Original objects are untouched.
        assert a.activation_j == pytest.approx(1.0)

    def test_scaled(self):
        breakdown = EnergyBreakdown(activation_j=2.0, read_j=4.0)
        scaled = breakdown.scaled(0.5)
        assert scaled.activation_j == pytest.approx(1.0)
        assert scaled.read_j == pytest.approx(2.0)

    def test_default_is_zero(self):
        assert EnergyBreakdown().total_j == 0.0


class TestDramEnergyParameters:
    def test_activation_energy_is_positive_nanojoules(self):
        energy = DramEnergyParameters.ddr3_1600()
        assert 1e-9 < energy.activation_energy_j < 1e-7

    def test_read_and_write_burst_energy_positive(self):
        energy = DramEnergyParameters.ddr3_1600()
        assert energy.read_burst_energy_j > 0
        assert energy.write_burst_energy_j > 0

    def test_io_energy_per_byte_matches_per_bit(self):
        energy = DramEnergyParameters(io_pj_per_bit=5.0)
        assert energy.io_energy_per_byte_j == pytest.approx(40e-12)

    def test_aap_energy_is_two_activations(self):
        energy = DramEnergyParameters.ddr3_1600()
        assert energy.aap_energy_j == pytest.approx(2 * energy.activation_energy_j)

    def test_tra_energy_exceeds_aap_energy(self):
        energy = DramEnergyParameters.ddr3_1600()
        assert energy.tra_energy_j > energy.aap_energy_j

    def test_channel_transfer_energy_scales_with_size(self):
        energy = DramEnergyParameters.ddr3_1600()
        small = energy.channel_transfer_energy_j(64)
        large = energy.channel_transfer_energy_j(6400)
        assert large > small * 50

    def test_channel_transfer_write_differs_from_read(self):
        energy = DramEnergyParameters.ddr3_1600()
        read = energy.channel_transfer_energy_j(4096, is_write=False)
        write = energy.channel_transfer_energy_j(4096, is_write=True)
        assert read != write

    def test_channel_transfer_rejects_negative(self):
        with pytest.raises(ValueError):
            DramEnergyParameters.ddr3_1600().channel_transfer_energy_j(-1)

    def test_activation_per_byte_amortizes_over_row(self):
        energy = DramEnergyParameters.ddr3_1600()
        assert energy.activation_energy_per_byte_j == pytest.approx(
            energy.activation_energy_j / energy.row_size_bytes
        )

    def test_in_dram_op_cheaper_per_byte_than_channel_movement(self):
        """The core energy argument of the paper: an AAP touches a whole row
        without any channel I/O, so per byte it must be far cheaper than
        moving the same data to the CPU."""
        energy = DramEnergyParameters.ddr3_1600()
        aap_per_byte = energy.aap_energy_j / energy.row_size_bytes
        channel_per_byte = (
            energy.channel_transfer_energy_j(energy.row_size_bytes)
            / energy.row_size_bytes
        )
        assert channel_per_byte > 10 * aap_per_byte

    def test_presets_differ(self):
        assert DramEnergyParameters.ddr4_2400().vdd < DramEnergyParameters.ddr3_1600().vdd
        assert (
            DramEnergyParameters.hmc_internal().io_pj_per_bit
            < DramEnergyParameters.ddr3_1600().io_pj_per_bit
        )
