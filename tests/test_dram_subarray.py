"""Tests for repro.dram.subarray."""

import numpy as np
import pytest

from repro.dram.subarray import Subarray


@pytest.fixture
def subarray() -> Subarray:
    return Subarray(rows=16, row_size_bytes=32)


class TestStorage:
    def test_unwritten_rows_read_as_zero(self, subarray):
        assert np.all(subarray.read_row(3) == 0)

    def test_write_then_read_roundtrip(self, subarray):
        data = np.arange(32, dtype=np.uint8)
        subarray.write_row(5, data)
        assert np.array_equal(subarray.read_row(5), data)

    def test_read_returns_copy(self, subarray):
        data = np.arange(32, dtype=np.uint8)
        subarray.write_row(5, data)
        view = subarray.read_row(5)
        view[:] = 0
        assert np.array_equal(subarray.read_row(5), data)

    def test_write_wrong_size_rejected(self, subarray):
        with pytest.raises(ValueError):
            subarray.write_row(0, np.zeros(16, dtype=np.uint8))

    def test_row_out_of_range(self, subarray):
        with pytest.raises(IndexError):
            subarray.read_row(16)
        with pytest.raises(IndexError):
            subarray.write_row(-1, np.zeros(32, dtype=np.uint8))

    def test_slice_write_and_read(self, subarray):
        subarray.write_row_slice(2, 8, np.full(4, 0xAB, dtype=np.uint8))
        assert np.all(subarray.read_row_slice(2, 8, 4) == 0xAB)
        assert np.all(subarray.read_row_slice(2, 0, 8) == 0)

    def test_slice_out_of_bounds_rejected(self, subarray):
        with pytest.raises(ValueError):
            subarray.write_row_slice(2, 30, np.zeros(4, dtype=np.uint8))
        with pytest.raises(ValueError):
            subarray.read_row_slice(2, 30, 4)

    def test_allocated_rows_counts_only_written(self, subarray):
        assert subarray.allocated_rows == 0
        subarray.write_row(1, np.zeros(32, dtype=np.uint8))
        subarray.write_row(9, np.zeros(32, dtype=np.uint8))
        assert subarray.allocated_rows == 2
        assert list(subarray.iter_written_rows()) == [1, 9]


class TestSenseAmplifiers:
    def test_activate_latches_row(self, subarray):
        data = np.full(32, 7, dtype=np.uint8)
        subarray.write_row(4, data)
        latched = subarray.activate(4)
        assert np.array_equal(latched, data)
        assert subarray.open_row == 4

    def test_precharge_clears_open_row(self, subarray):
        subarray.activate(4)
        subarray.precharge()
        assert subarray.open_row is None

    def test_aap_second_activation_copies_buffer(self, subarray):
        source = np.arange(32, dtype=np.uint8)
        subarray.write_row(0, source)
        subarray.activate(0)
        subarray.activate_onto_open_buffer(7)
        assert np.array_equal(subarray.read_row(7), source)

    def test_second_activation_without_buffer_rejected(self, subarray):
        with pytest.raises(RuntimeError):
            subarray.activate_onto_open_buffer(3)

    def test_triple_activate_computes_majority(self, subarray):
        a = np.array([0b1100] * 32, dtype=np.uint8)
        b = np.array([0b1010] * 32, dtype=np.uint8)
        c = np.array([0b0000] * 32, dtype=np.uint8)
        subarray.write_row(0, a)
        subarray.write_row(1, b)
        subarray.write_row(2, c)
        result = subarray.triple_activate(0, 1, 2)
        assert np.all(result == 0b1000)  # majority(a, b, 0) == a & b

    def test_triple_activate_overwrites_all_three_rows(self, subarray):
        a = np.full(32, 0xF0, dtype=np.uint8)
        b = np.full(32, 0x0F, dtype=np.uint8)
        c = np.full(32, 0xFF, dtype=np.uint8)
        subarray.write_row(0, a)
        subarray.write_row(1, b)
        subarray.write_row(2, c)
        result = subarray.triple_activate(0, 1, 2)
        for row in range(3):
            assert np.array_equal(subarray.read_row(row), result)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            Subarray(rows=0, row_size_bytes=64)
        with pytest.raises(ValueError):
            Subarray(rows=8, row_size_bytes=0)
