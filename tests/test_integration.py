"""Cross-module integration tests.

Each test exercises a realistic end-to-end flow through several subsystems,
mirroring the experiments the benchmark harness runs (at a much smaller
scale so the whole suite stays fast).
"""

import numpy as np
import pytest

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.metrics import arithmetic_mean, geometric_mean
from repro.consumer.analysis import ConsumerStudy
from repro.core.system import PIMSystem
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.queries import QueryEngine, ScanBackend
from repro.database.tables import generate_sales_table
from repro.dram.device import DramDevice
from repro.graph.algorithms import breadth_first_search, pagerank
from repro.graph.generators import erdos_renyi, rmat
from repro.graph.partition import partition_graph
from repro.hostsim.cpu import HostCpu
from repro.hostsim.gpu import HostGpu
from repro.rowclone.engine import RowCloneEngine
from repro.stacked.hmc import HmcParameters, StackedMemorySystem
from repro.tesseract.baseline import ConventionalGraphSystem
from repro.tesseract.runtime import TesseractSystem


class TestAmbitEndToEnd:
    def test_ambit_vs_cpu_vs_gpu_ordering(self):
        """E1's qualitative ordering: Ambit > GPU > CPU for bulk bitwise ops."""
        device = DramDevice.ddr3()
        ambit = AmbitEngine(device, AmbitConfig(banks_parallel=8))
        cpu = HostCpu(dram=device)
        gpu = HostGpu()
        size_bits = 16 << 20
        ratios = []
        from repro.ambit.bitvector import BulkBitVector

        for op in ("not", "and", "or", "nand", "nor", "xor", "xnor"):
            va = BulkBitVector(size_bits)
            vb = None if op == "not" else BulkBitVector(size_bits)
            _, ambit_metrics = ambit.execute(op, va, vb)
            cpu_metrics = cpu.bulk_bitwise(op, size_bits // 8)
            gpu_metrics = gpu.bulk_bitwise(op, size_bits // 8)
            assert (
                ambit_metrics.throughput_bytes_per_s
                > gpu_metrics.throughput_bytes_per_s
                > cpu_metrics.throughput_bytes_per_s
            )
            ratios.append(
                ambit_metrics.throughput_bytes_per_s / cpu_metrics.throughput_bytes_per_s
            )
        assert 25 < arithmetic_mean(ratios) < 70

    def test_rowclone_feeds_ambit_control_rows(self, small_device):
        """RowClone and Ambit share the same AAP substrate: initializing a
        control row with RowClone and then using it in a TRA produces the
        expected AND."""
        engine = AmbitEngine(small_device, AmbitConfig(banks_parallel=2))
        rowclone = RowCloneEngine(small_device)
        bank = small_device.bank_at(0, 0, 0)
        zeros = np.zeros(64, dtype=np.uint8)
        bank.write_row(0, zeros)
        rowclone.copy_row(bank, 0, 1)
        assert np.array_equal(bank.read_row(1), zeros)
        a = engine.alloc_vector(256).fill_random(seed=1)
        b = engine.alloc_vector(256).fill_random(seed=2)
        out, _ = engine.execute("and", a, b, functional=True)
        assert np.array_equal(out.data[:32], a.expected_and(b))


class TestDatabaseEndToEnd:
    def test_bitmap_and_bitweaving_agree_with_rowscan(self):
        table = generate_sales_table(20_000, seed=5)
        index = BitmapIndex(table, ["region"])
        column = BitWeavingColumn.from_table(table, "quantity")
        engine = QueryEngine()

        region_codes = table.column("region")
        quantity_codes = table.column("quantity")
        reference = int(
            (np.isin(region_codes, [0, 1]) & True).sum()
        )
        bitmap_result = engine.bitmap_conjunction_query(
            index, [("region", [0, 1])], ScanBackend.AMBIT
        )
        assert bitmap_result.matching_rows == reference

        reference_range = int(((quantity_codes >= 10) & (quantity_codes <= 200)).sum())
        for backend in (ScanBackend.CPU, ScanBackend.AMBIT):
            result = engine.range_count_query(column, 10, 200, backend)
            assert result.matching_rows == reference_range


class TestTesseractEndToEnd:
    def test_five_workload_summary_shape(self):
        """A miniature version of E5: all five workloads, speedup and energy
        reduction summarized the way the paper reports them."""
        # Un-skewed synthetic graph: at this miniature scale an R-MAT graph's
        # single heaviest vertex would dominate one vault's load and mask the
        # bandwidth argument the experiment is about.
        graph = erdos_renyi(1 << 13, avg_degree=16, seed=9)
        partition = partition_graph(
            graph, 512, vaults_per_cube=32, strategy="degree_balanced"
        )
        tesseract = TesseractSystem(StackedMemorySystem(num_stacks=16))
        baseline = ConventionalGraphSystem()
        speedups = []
        reductions = []
        from repro.graph.algorithms import (
            average_teenage_follower,
            single_source_shortest_paths,
            weakly_connected_components,
        )

        workloads = [
            pagerank(graph, max_iterations=3)[1],
            breadth_first_search(graph)[1],
            single_source_shortest_paths(graph)[1],
            weakly_connected_components(graph, max_iterations=5)[1],
            average_teenage_follower(graph)[1],
        ]
        for profile in workloads:
            scaled = profile.scaled(2048)
            pim = tesseract.execute(scaled, partition)
            host = baseline.execute(
                graph, scaled, effective_num_vertices=graph.num_vertices * 2048
            )
            speedups.append(pim.speedup_over(host))
            reductions.append(pim.energy_reduction_percent(host))
        assert 6 < geometric_mean(speedups) < 25
        assert 75 < arithmetic_mean(reductions) < 95


class TestConsumerEndToEnd:
    def test_study_runs_with_custom_stack(self):
        study = ConsumerStudy()
        stack = HmcParameters.hmc2()
        assert stack.logic_layer.num_vaults == 32
        fraction = study.average_data_movement_fraction()
        reductions = study.average_reductions()
        assert fraction > 0.5
        assert reductions["pim_core_energy_reduction_percent"] > 35


class TestPimSystemEndToEnd:
    def test_query_style_workflow_through_public_api(self):
        system = PIMSystem.default()
        bits = 1 << 21
        region = system.alloc_bitvector(bits).fill_random(seed=1, density=0.2)
        product = system.alloc_bitvector(bits).fill_random(seed=2, density=0.3)
        recent = system.alloc_bitvector(bits).fill_random(seed=3, density=0.5)
        matches = system.bulk_and(region, product)
        matches = system.bulk_and(matches, recent)
        expected = region.data & product.data & recent.data
        assert np.array_equal(matches.data, expected)
        assert len(system.history) == 2
        assert all(record.speedup > 10 for record in system.history)
        report = system.history_table().render()
        assert "ambit_and" in report
