"""Tests for repro.dram.commands."""

import pytest

from repro.dram.commands import Command, CommandKind


class TestCommandKind:
    def test_pim_kinds(self):
        assert CommandKind.AAP.is_pim
        assert CommandKind.TRA.is_pim

    def test_conventional_kinds_are_not_pim(self):
        for kind in (CommandKind.ACTIVATE, CommandKind.PRECHARGE, CommandKind.READ,
                     CommandKind.WRITE, CommandKind.REFRESH):
            assert not kind.is_pim


class TestCommandValidation:
    def test_activate_requires_row(self):
        with pytest.raises(ValueError):
            Command(CommandKind.ACTIVATE)

    def test_read_requires_column(self):
        with pytest.raises(ValueError):
            Command(CommandKind.READ, row=3)

    def test_aap_requires_destination(self):
        with pytest.raises(ValueError):
            Command(CommandKind.AAP, row=1)

    def test_tra_requires_three_rows(self):
        with pytest.raises(ValueError):
            Command(CommandKind.TRA, row=1, aux_row=2)

    def test_valid_commands_construct(self):
        Command(CommandKind.ACTIVATE, row=5)
        Command(CommandKind.READ, row=5, column=3)
        Command(CommandKind.AAP, row=5, aux_row=9)
        Command(CommandKind.TRA, row=5, aux_row=6, aux_row2=7)
        Command(CommandKind.REFRESH)


class TestCommandDescribe:
    def test_aap_describe(self):
        command = Command(CommandKind.AAP, channel=0, rank=0, bank=3, row=12, aux_row=840)
        assert command.describe() == "AAP ch0/ra0/ba3 r12->r840"

    def test_tra_describe_lists_three_rows(self):
        command = Command(CommandKind.TRA, bank=1, row=1, aux_row=2, aux_row2=3)
        assert "r1,r2,r3" in command.describe()

    def test_read_describe_includes_column(self):
        command = Command(CommandKind.READ, row=7, column=11)
        assert "c11" in command.describe()

    def test_refresh_describe(self):
        assert Command(CommandKind.REFRESH, channel=1).describe().startswith("REF")
