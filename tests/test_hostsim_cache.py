"""Tests for repro.hostsim.cache."""

import pytest

from repro.hostsim.cache import Cache, CacheConfig, CacheHierarchy


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig("L1", 32 * 1024, 8, 64)
        assert config.num_sets == 64

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("L1", 1000, 8, 64)
        with pytest.raises(ValueError):
            CacheConfig("L1", 0, 8, 64)

    def test_presets(self):
        assert CacheConfig.skylake_l1().size_bytes == 32 * 1024
        assert CacheConfig.skylake_llc().size_bytes == 8 * 1024 * 1024


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        cache = Cache(CacheConfig("L1", 1024, 2, 64))
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = Cache(CacheConfig("L1", 2 * 64, 2, 64))  # one set, two ways
        cache.access(0)
        cache.access(64)
        cache.access(128)  # evicts line 0
        assert cache.contains(64)
        assert not cache.contains(0)
        assert cache.stats.evictions == 1

    def test_lru_updated_on_hit(self):
        cache = Cache(CacheConfig("L1", 2 * 64, 2, 64))
        cache.access(0)
        cache.access(64)
        cache.access(0)      # touch line 0 so line 64 is now LRU
        cache.access(128)    # should evict 64, not 0
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_dirty_eviction_counts_writeback(self):
        cache = Cache(CacheConfig("L1", 2 * 64, 2, 64))
        cache.access(0, is_write=True)
        cache.access(64)
        cache.access(128)
        assert cache.stats.writebacks == 1

    def test_flush_reports_dirty_lines(self):
        cache = Cache(CacheConfig("L1", 1024, 2, 64))
        cache.access(0, is_write=True)
        cache.access(64)
        assert cache.flush() == 1
        assert cache.resident_lines == 0

    def test_same_set_different_tags_coexist(self):
        cache = Cache(CacheConfig("L1", 4 * 64, 4, 64))
        for i in range(4):
            cache.access(i * 64 * cache.config.num_sets)
        assert cache.resident_lines == 4


class TestCacheHierarchy:
    def test_default_levels(self):
        hierarchy = CacheHierarchy()
        assert [c.config.name for c in hierarchy.caches] == ["L1", "L2", "LLC"]

    def test_miss_goes_to_memory(self):
        hierarchy = CacheHierarchy()
        assert hierarchy.access(0) == "MEM"
        assert hierarchy.access(0) == "L1"
        assert hierarchy.memory_accesses == 1

    def test_latency_and_energy_accumulate(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)
        latency_after_miss = hierarchy.total_latency_ns
        hierarchy.access(0)
        assert hierarchy.total_latency_ns > latency_after_miss
        assert hierarchy.total_energy_j > 0

    def test_l2_hit_after_l1_eviction(self):
        small_l1 = CacheConfig("L1", 2 * 64, 2, 64)
        big_l2 = CacheConfig("L2", 64 * 64, 16, 64)
        hierarchy = CacheHierarchy([small_l1, big_l2], memory_latency_ns=100.0)
        hierarchy.access(0)
        hierarchy.access(64)
        hierarchy.access(128)  # evicts 0 from L1, still in L2
        assert hierarchy.access(0) == "L2"

    def test_stats_by_level(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)
        stats = hierarchy.stats_by_level()
        assert stats["L1"].misses == 1

    def test_requires_at_least_one_level(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_flush_all_levels(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)
        hierarchy.flush()
        assert hierarchy.access(0) == "MEM"
