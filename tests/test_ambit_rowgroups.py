"""Tests for repro.ambit.rowgroups."""

import pytest

from repro.ambit.rowgroups import AmbitSubarrayLayout


class TestLayout:
    def test_reserved_row_count(self):
        layout = AmbitSubarrayLayout(512)
        # 4 T rows + 2 DCC pairs (4 rows) + 2 control rows.
        assert layout.reserved_rows == 10
        assert layout.data_rows == 502

    def test_all_reserved_rows_are_distinct_and_in_range(self):
        layout = AmbitSubarrayLayout(512)
        reserved = layout.all_reserved_rows()
        assert len(reserved) == len(set(reserved)) == layout.reserved_rows
        assert all(layout.data_rows <= row < 512 for row in reserved)

    def test_data_rows_do_not_overlap_reserved(self):
        layout = AmbitSubarrayLayout(64)
        reserved = set(layout.all_reserved_rows())
        start, stop = layout.data_row_range()
        assert start == 0
        assert all(row not in reserved for row in range(start, stop))

    def test_is_data_row(self):
        layout = AmbitSubarrayLayout(64)
        assert layout.is_data_row(0)
        assert layout.is_data_row(layout.data_rows - 1)
        assert not layout.is_data_row(layout.data_rows)
        assert not layout.is_data_row(63)

    def test_t_row_indices(self):
        layout = AmbitSubarrayLayout(64)
        t_rows = [layout.t_row(i) for i in range(4)]
        assert t_rows == sorted(t_rows)
        with pytest.raises(IndexError):
            layout.t_row(4)

    def test_dcc_and_complement_are_adjacent(self):
        layout = AmbitSubarrayLayout(64)
        for index in range(2):
            assert layout.dcc_bar_row(index) == layout.dcc_row(index) + 1
        with pytest.raises(IndexError):
            layout.dcc_row(2)

    def test_control_rows_are_last(self):
        layout = AmbitSubarrayLayout(64)
        assert layout.c1_row == 63
        assert layout.c0_row == 62

    def test_too_small_subarray_rejected(self):
        with pytest.raises(ValueError):
            AmbitSubarrayLayout(10)
        AmbitSubarrayLayout(11)  # one data row is enough
