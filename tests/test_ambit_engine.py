"""Tests for repro.ambit.engine — functional correctness and cost model."""

import numpy as np
import pytest

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AMBIT_PRIMITIVE_COUNTS, AmbitConfig, AmbitEngine, BINARY_OPS, UNARY_OPS
from repro.dram.device import DramDevice
from repro.hostsim.cpu import HostCpu

ALL_OPS = list(UNARY_OPS) + list(BINARY_OPS)

REFERENCE = {
    "not": lambda a, b: ~a,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "nand": lambda a, b: ~(a & b),
    "nor": lambda a, b: ~(a | b),
    "xor": lambda a, b: a ^ b,
    "xnor": lambda a, b: ~(a ^ b),
}


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("op", ALL_OPS)
    def test_op_matches_reference_on_device(self, small_ambit, op):
        num_bits = 1000  # spans several 64 B rows across both banks
        a = small_ambit.alloc_vector(num_bits).fill_random(seed=10)
        b = None
        if op in BINARY_OPS:
            b = small_ambit.alloc_vector(num_bits).fill_random(seed=20)
        out, metrics = small_ambit.execute(op, a, b, functional=True)
        reference = REFERENCE[op](
            a.data[: a.num_bytes], b.data[: b.num_bytes] if b is not None else None
        ).astype(np.uint8)
        assert np.array_equal(out.data[: out.num_bytes], reference)
        assert metrics.bytes_moved_on_channel == 0

    def test_functional_and_analytical_agree_on_value(self, small_ambit):
        a = small_ambit.alloc_vector(600).fill_random(seed=1)
        b = small_ambit.alloc_vector(600).fill_random(seed=2)
        functional, _ = small_ambit.execute("xor", a, b, functional=True)
        analytical, _ = small_ambit.execute("xor", a, b, functional=False)
        assert np.array_equal(
            functional.data[: functional.num_bytes], analytical.data[: analytical.num_bytes]
        )

    def test_functional_and_analytical_charge_same_cost(self, small_ambit):
        a = small_ambit.alloc_vector(600).fill_random(seed=1)
        b = small_ambit.alloc_vector(600).fill_random(seed=2)
        _, functional = small_ambit.execute("and", a, b, functional=True)
        _, analytical = small_ambit.execute("and", a, b, functional=False)
        assert functional.latency_ns == pytest.approx(analytical.latency_ns)
        assert functional.energy_j == pytest.approx(analytical.energy_j)

    def test_operands_not_modified(self, small_ambit):
        a = small_ambit.alloc_vector(500).fill_random(seed=5)
        b = small_ambit.alloc_vector(500).fill_random(seed=6)
        a_before = a.data.copy()
        b_before = b.data.copy()
        small_ambit.execute("nand", a, b, functional=True)
        assert np.array_equal(a.data, a_before)
        assert np.array_equal(b.data, b_before)

    def test_preallocated_output_is_used(self, small_ambit):
        a = small_ambit.alloc_vector(500).fill_random(seed=1)
        b = small_ambit.alloc_vector(500).fill_random(seed=2)
        out = small_ambit.alloc_vector(500)
        returned, _ = small_ambit.execute("and", a, b, out=out, functional=True)
        assert returned is out
        assert np.array_equal(out.data[: out.num_bytes], a.expected_and(b))

    @pytest.mark.parametrize("op", ["not", "nand", "nor", "xnor"])
    def test_complementing_ops_agree_on_padding(self, small_ambit, op):
        """Regression: the functional path used to return set padding bits
        for complementing ops while the analytical path masked them."""
        num_bits = 1003  # not a multiple of 8: 5 padding bits in the last byte
        a = small_ambit.alloc_vector(num_bits).fill_random(seed=31)
        b = small_ambit.alloc_vector(num_bits).fill_random(seed=32) if op != "not" else None
        functional, _ = small_ambit.execute(op, a, b, functional=True)
        analytical, _ = small_ambit.execute(op, a, b, functional=False)
        assert np.array_equal(functional.data, analytical.data)
        # All padding past num_bits is zero on both paths.
        assert functional.data[num_bits // 8] >> (num_bits % 8) == 0
        assert functional.data[num_bits // 8 + 1 :].max(initial=0) == 0
        assert functional.count_ones() == int(functional.to_bits().sum())

    def test_expected_not_masks_padding(self, small_ambit):
        a = small_ambit.alloc_vector(13).fill_value(1)
        expected = a.expected_not()
        assert expected.tolist() == [0, 0]
        out, _ = small_ambit.execute("not", a, functional=True)
        assert np.array_equal(out.data[: out.num_bytes], expected)

    def test_host_only_vectors_use_analytical_path(self):
        engine = AmbitEngine(DramDevice.ddr3())
        a = BulkBitVector(1 << 16).fill_random(seed=1)
        b = BulkBitVector(1 << 16).fill_random(seed=2)
        out, metrics = engine.execute("or", a, b)
        assert np.array_equal(out.data, a.data | b.data)
        assert "analytical" in metrics.notes


class TestArgumentValidation:
    def test_binary_op_requires_two_operands(self, small_ambit):
        a = small_ambit.alloc_vector(100)
        with pytest.raises(ValueError):
            small_ambit.execute("and", a)

    def test_unary_op_rejects_second_operand(self, small_ambit):
        a = small_ambit.alloc_vector(100)
        b = small_ambit.alloc_vector(100)
        with pytest.raises(ValueError):
            small_ambit.execute("not", a, b)

    def test_length_mismatch_rejected(self, small_ambit):
        a = small_ambit.alloc_vector(100)
        b = small_ambit.alloc_vector(200)
        with pytest.raises(ValueError):
            small_ambit.execute("and", a, b)

    def test_unknown_op_rejected(self, small_ambit):
        a = small_ambit.alloc_vector(100)
        with pytest.raises(ValueError):
            small_ambit.execute("implies", a, a)

    def test_unplaced_vector_rejected_in_functional_mode(self, small_ambit):
        a = BulkBitVector(100, row_size_bytes=64)
        with pytest.raises(ValueError):
            small_ambit.execute("not", a, functional=True)


class TestCostModel:
    def test_primitive_counts_exposed(self):
        engine = AmbitEngine(DramDevice.ddr3())
        assert engine.primitives_for("and") == AMBIT_PRIMITIVE_COUNTS["and"]
        with pytest.raises(ValueError):
            engine.primitives_for("mystery")

    def test_not_is_cheapest_and_xor_is_most_expensive(self):
        engine = AmbitEngine(DramDevice.ddr3())
        latencies = {op: engine.per_row_latency_ns(op) for op in ALL_OPS}
        assert latencies["not"] == min(latencies.values())
        assert latencies["xor"] == max(latencies.values())

    def test_throughput_scales_with_banks(self):
        engine = AmbitEngine(DramDevice.ddr3())
        assert engine.throughput_bytes_per_s("and", banks=16) == pytest.approx(
            2 * engine.throughput_bytes_per_s("and", banks=8)
        )

    def test_latency_independent_of_value_density(self):
        engine = AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=8))
        dense = BulkBitVector(1 << 20).fill_value(1)
        sparse = BulkBitVector(1 << 20).fill_value(0)
        _, dense_metrics = engine.execute("and", dense, dense.copy_like())
        _, sparse_metrics = engine.execute("and", sparse, sparse.copy_like())
        assert dense_metrics.latency_ns == pytest.approx(sparse_metrics.latency_ns)

    def test_ambit_8_banks_beats_cpu_by_published_factor(self):
        """The headline E1 shape: with 8 banks, bulk AND throughput is tens
        of times the processor-centric throughput."""
        device = DramDevice.ddr3()
        engine = AmbitEngine(device, AmbitConfig(banks_parallel=8))
        cpu = HostCpu(dram=device)
        size_bits = 8 << 23  # 8 MiB
        a = BulkBitVector(size_bits)
        b = BulkBitVector(size_bits)
        _, ambit_metrics = engine.execute("and", a, b)
        cpu_metrics = cpu.bulk_bitwise("and", size_bits // 8)
        ratio = ambit_metrics.throughput_bytes_per_s / cpu_metrics.throughput_bytes_per_s
        assert 20 < ratio < 80

    def test_energy_scales_with_rows_not_banks(self):
        device = DramDevice.ddr3()
        few_banks = AmbitEngine(device, AmbitConfig(banks_parallel=2))
        many_banks = AmbitEngine(device, AmbitConfig(banks_parallel=16))
        a = BulkBitVector(1 << 20)
        b = BulkBitVector(1 << 20)
        _, few = few_banks.execute("or", a, b)
        _, many = many_banks.execute("or", a, b)
        assert few.energy_j == pytest.approx(many.energy_j)
        assert many.latency_ns < few.latency_ns
