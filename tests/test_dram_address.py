"""Tests for repro.dram.address."""

import pytest

from repro.dram.address import CACHE_LINE_BYTES, AddressMapper, DramCoordinate
from repro.dram.geometry import DramGeometry


@pytest.fixture
def geometry() -> DramGeometry:
    return DramGeometry(
        channels=2,
        ranks_per_channel=1,
        banks_per_rank=4,
        subarrays_per_bank=2,
        rows_per_subarray=16,
        row_size_bytes=512,
    )


class TestRowInterleaved:
    def test_consecutive_lines_alternate_channels(self, geometry):
        mapper = AddressMapper(geometry, "row_interleaved")
        first = mapper.decode(0)
        second = mapper.decode(CACHE_LINE_BYTES)
        assert first.channel != second.channel

    def test_roundtrip_encode_decode(self, geometry):
        mapper = AddressMapper(geometry, "row_interleaved")
        for address in range(0, geometry.total_capacity_bytes, 7919 * CACHE_LINE_BYTES):
            aligned = (address // CACHE_LINE_BYTES) * CACHE_LINE_BYTES
            coordinate = mapper.decode(aligned)
            assert mapper.encode(coordinate) == aligned

    def test_stream_stays_in_one_row_before_switching(self, geometry):
        mapper = AddressMapper(geometry, "row_interleaved")
        lines_per_row = geometry.row_size_bytes // CACHE_LINE_BYTES
        rows_seen = {
            mapper.decode(i * CACHE_LINE_BYTES).row
            for i in range(lines_per_row * geometry.channels)
        }
        assert rows_seen == {0}


class TestBankInterleaved:
    def test_consecutive_lines_spread_across_banks(self, geometry):
        mapper = AddressMapper(geometry, "bank_interleaved")
        banks = {
            mapper.decode(i * CACHE_LINE_BYTES).bank
            for i in range(geometry.channels * geometry.banks_per_rank)
        }
        assert len(banks) == geometry.banks_per_rank

    def test_roundtrip_encode_decode(self, geometry):
        mapper = AddressMapper(geometry, "bank_interleaved")
        for address in range(0, geometry.total_capacity_bytes, 104729 * CACHE_LINE_BYTES):
            aligned = (address // CACHE_LINE_BYTES) * CACHE_LINE_BYTES
            coordinate = mapper.decode(aligned)
            assert mapper.encode(coordinate) == aligned


class TestValidation:
    def test_unknown_policy_rejected(self, geometry):
        with pytest.raises(ValueError):
            AddressMapper(geometry, "hashed")

    def test_out_of_range_address_rejected(self, geometry):
        mapper = AddressMapper(geometry)
        with pytest.raises(ValueError):
            mapper.decode(geometry.total_capacity_bytes)
        with pytest.raises(ValueError):
            mapper.decode(-1)

    def test_encode_validates_fields(self, geometry):
        mapper = AddressMapper(geometry)
        with pytest.raises(ValueError):
            mapper.encode(DramCoordinate(channel=99, rank=0, bank=0, row=0, column=0))

    def test_decode_within_capacity_never_exceeds_geometry(self, geometry):
        mapper = AddressMapper(geometry)
        coordinate = mapper.decode(geometry.total_capacity_bytes - CACHE_LINE_BYTES)
        assert coordinate.channel < geometry.channels
        assert coordinate.bank < geometry.banks_per_rank
        assert coordinate.row < geometry.rows_per_bank

    def test_as_tuple(self):
        coordinate = DramCoordinate(1, 0, 2, 3, 4)
        assert coordinate.as_tuple() == (1, 0, 2, 3, 4)
