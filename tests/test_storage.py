"""Tests for the mutation subsystem (`repro.storage`).

The load-bearing acceptance property: after *any* sequence of appends,
updates, and deletes served through the frontend, every maintenance
strategy — eager, lazy, hybrid — leaves the index bit-exact with a
from-scratch rebuild of the mutated table.  Around it: strategy
resolution and the hybrid hot/cold split, charged write costs visible
in the ledger, the unique-row-id precondition, and the write-plan lint
that certifies each lowered write's charge.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.database.bitmap_index import BitmapIndex
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.service import (
    BatchExecutor,
    BatchPolicy,
    BitmapConjunctionRequest,
    ServiceFrontend,
)
from repro.storage import (
    STRATEGIES,
    AppendRequest,
    DeleteRequest,
    MaintenancePolicy,
    UpdateRequest,
    apply_mutation,
    charged_columns,
    is_write_request,
    resolve_maintenance,
)
from repro.verify import WritePlanError
from repro.verify.plan_lint import lint_write_plan

CARDINALITIES = {"region": 6, "status": 4, "tier": 3}


def _device(banks: int = 4) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=32,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine(banks: int = 4) -> AmbitEngine:
    return AmbitEngine(
        _device(banks), AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _table_index(rng, rows: int = 240):
    table = ColumnTable("t", rows)
    for name, cardinality in CARDINALITIES.items():
        table.add_column(
            name, rng.integers(0, cardinality, size=rows), cardinality=cardinality
        )
    return table, BitmapIndex(table, list(CARDINALITIES))


def _frontend(maintenance, **kwargs) -> ServiceFrontend:
    kwargs.setdefault("policy", BatchPolicy(max_batch=4, window_ns=None))
    kwargs.setdefault("max_queue_depth", 256)
    return ServiceFrontend(
        executor=BatchExecutor(engine=_engine(), sanitize=True),
        maintenance=maintenance,
        **kwargs,
    )


def _random_write(rng, table, index):
    """One random mutation valid against the table's *current* rows."""
    kind = rng.choice(("append", "update", "delete"))
    if kind == "append" or table.num_rows < 8:
        count = int(rng.integers(1, 5))
        rows = {
            name: [int(v) for v in rng.integers(0, card, size=count)]
            for name, card in CARDINALITIES.items()
        }
        return AppendRequest(table=table, index=index, rows=rows)
    if kind == "update":
        column = str(rng.choice(list(CARDINALITIES)))
        count = int(rng.integers(1, min(8, table.num_rows)))
        row_ids = rng.choice(table.num_rows, size=count, replace=False)
        values = rng.integers(0, CARDINALITIES[column], size=count)
        return UpdateRequest(
            table=table,
            index=index,
            column=column,
            row_ids=[int(r) for r in row_ids],
            values=[int(v) for v in values],
        )
    count = int(rng.integers(1, min(4, table.num_rows)))
    row_ids = rng.choice(table.num_rows, size=count, replace=False)
    return DeleteRequest(table=table, index=index, row_ids=[int(r) for r in row_ids])


def _random_read(rng, index):
    picked = rng.choice(len(CARDINALITIES), size=2, replace=False)
    predicates = []
    for c in picked:
        name = list(CARDINALITIES)[c]
        values = rng.choice(CARDINALITIES[name], size=2, replace=False)
        predicates.append((name, tuple(int(v) for v in values)))
    return BitmapConjunctionRequest(index=index, predicates=tuple(predicates))


def _assert_rebuild_equivalent(index: BitmapIndex, table: ColumnTable) -> None:
    """The index's planes equal a from-scratch rebuild of the table.

    Reading through :meth:`BitmapIndex.bitmap` repairs lazily-deferred
    dirt first, so this is exactly the user-visible equivalence.
    """
    fresh = BitmapIndex(table, list(CARDINALITIES))
    for column, cardinality in CARDINALITIES.items():
        for value in range(cardinality):
            assert np.array_equal(
                index.bitmap(column, value), fresh.bitmap(column, value)
            ), f"plane {column}={value} diverged from rebuild"


class TestMaintenancePolicy:
    def test_strategy_names_validate(self):
        for strategy in STRATEGIES:
            assert MaintenancePolicy(strategy).strategy == strategy
        with pytest.raises(ValueError):
            MaintenancePolicy("write-through")

    def test_resolve_normalizes(self):
        assert resolve_maintenance(None).strategy == "eager"
        assert resolve_maintenance("lazy").strategy == "lazy"
        policy = MaintenancePolicy("hybrid")
        assert resolve_maintenance(policy) is policy

    def test_hybrid_hot_cold_split_follows_reads(self):
        policy = MaintenancePolicy("hybrid", hot_threshold=2)
        assert policy.column_strategy("region") == "lazy"  # cold until read
        policy.note_read(["region"])
        policy.note_read(["region"])
        assert policy.is_hot("region")
        assert policy.column_strategy("region") == "eager"
        assert policy.column_strategy("status") == "lazy"  # still cold

    def test_estimate_planes_caps_at_cardinality(self):
        rng = np.random.default_rng(0)
        table, index = _table_index(rng)
        policy = MaintenancePolicy("eager")
        update = UpdateRequest(
            table=table, index=index, column="status",
            row_ids=list(range(12)), values=[v % 4 for v in range(12)],
        )
        # clear-old + set-new would be 2 * 4 distinct values = 8 planes,
        # capped at the column's cardinality of 4.
        assert policy.estimate_planes(update, "status") == 4
        append = AppendRequest(table=table, index=index, rows={"region": [0]})
        assert policy.estimate_planes(append, "region") == CARDINALITIES["region"]

    def test_charged_columns_respects_scatter_restriction(self):
        rng = np.random.default_rng(1)
        table, index = _table_index(rng)
        delete = DeleteRequest(table=table, index=index, row_ids=[0])
        assert set(charged_columns(delete)) == set(CARDINALITIES)
        part = DeleteRequest(
            table=table, index=index, row_ids=[0], columns=("status",), apply=False
        )
        assert charged_columns(part) == ("status",)

    def test_unique_row_ids_required(self):
        rng = np.random.default_rng(2)
        table, index = _table_index(rng)
        with pytest.raises(ValueError):
            apply_mutation(
                UpdateRequest(
                    table=table, index=index, column="status",
                    row_ids=[3, 3], values=[1, 2],
                )
            )


class TestRebuildEquivalence:
    """Any write sequence, any strategy: index == from-scratch rebuild."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_strategies_match_rebuild_after_any_write_sequence(self, strategy, seed):
        rng = np.random.default_rng(seed)
        table, index = _table_index(rng, rows=120)
        frontend = _frontend(strategy)
        for _ in range(int(rng.integers(4, 10))):
            if rng.random() < 0.5:
                frontend.offer(_random_write(rng, table, index))
            else:
                frontend.offer(_random_read(rng, index))
            frontend.drain()
        _assert_rebuild_equivalent(index, table)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_batched_writes_match_rebuild(self, strategy):
        """Writes and reads closing in the *same* batch stay equivalent."""
        rng = np.random.default_rng(9)
        table, index = _table_index(rng, rows=120)
        frontend = _frontend(strategy)
        for _ in range(12):
            if rng.random() < 0.5:
                frontend.offer(_random_write(rng, table, index))
            else:
                frontend.offer(_random_read(rng, index))
        frontend.drain()
        _assert_rebuild_equivalent(index, table)


class TestWriteCosts:
    def test_eager_write_costs_land_in_the_ledger(self):
        rng = np.random.default_rng(3)
        table, index = _table_index(rng)
        frontend = _frontend("eager")
        frontend.offer(
            UpdateRequest(
                table=table, index=index, column="status",
                row_ids=[1, 2, 3], values=[0, 1, 2],
            )
        )
        frontend.drain()
        (record,) = frontend.result().completed()
        assert is_write_request(record.request)
        assert record.value == 3  # rows affected is the response value
        assert record.metrics.latency_ns > 0
        assert record.metrics.energy_j > 0

    def test_lazy_defers_and_the_first_read_repairs(self):
        rng = np.random.default_rng(4)
        table, index = _table_index(rng)
        frontend = _frontend("lazy")
        frontend.offer(
            UpdateRequest(
                table=table, index=index, column="status",
                row_ids=[5], values=[1],
            )
        )
        frontend.drain()
        assert "status" in index.dirty_columns()
        rebuilds_before = index.rebuilds
        frontend.offer(
            BitmapConjunctionRequest(
                index=index, predicates=(("status", (0, 1)), ("region", (0, 1)))
            )
        )
        frontend.drain()
        assert index.dirty_columns() == []
        assert index.rebuilds > rebuilds_before

    def test_append_and_delete_report_rows_affected(self):
        rng = np.random.default_rng(5)
        table, index = _table_index(rng)
        frontend = _frontend("eager")
        frontend.offer(
            AppendRequest(
                table=table, index=index,
                rows={name: [0, 1] for name in CARDINALITIES},
            )
        )
        frontend.offer(DeleteRequest(table=table, index=index, row_ids=[0, 4, 7]))
        frontend.drain()
        append_record, delete_record = frontend.result().completed()
        assert append_record.value == 2
        assert delete_record.value == 3


class TestWritePlanLint:
    def test_real_outcomes_certify(self):
        rng = np.random.default_rng(6)
        table, index = _table_index(rng)
        executor = BatchExecutor(engine=_engine())
        policy = MaintenancePolicy("eager")
        for request in (
            UpdateRequest(
                table=table, index=index, column="tier", row_ids=[2], values=[1]
            ),
            AppendRequest(
                table=table, index=index, rows={n: [0] for n in CARDINALITIES}
            ),
            DeleteRequest(table=table, index=index, row_ids=[1]),
        ):
            outcome = policy.lower_write(request, executor)
            lint_write_plan(outcome)  # must not raise
            assert outcome.invalidate_all == (request.kind in ("append", "delete"))

    def test_misdeclared_charge_is_caught(self):
        rng = np.random.default_rng(7)
        table, index = _table_index(rng)
        executor = BatchExecutor(engine=_engine())
        outcome = MaintenancePolicy("eager").lower_write(
            UpdateRequest(
                table=table, index=index, column="tier", row_ids=[0], values=[2]
            ),
            executor,
        )
        outcome.planes_charged += 1  # ledger no longer matches the primitives
        with pytest.raises(WritePlanError):
            lint_write_plan(outcome)
