"""Tests for repro.consumer (workloads, energy model, offload, study)."""

import pytest

from repro.consumer.analysis import ConsumerStudy
from repro.consumer.energy_model import ConsumerEnergyModel, ConsumerEnergyParameters, EnergyAccount
from repro.consumer.pim_logic import PimOffloadEngine
from repro.consumer.workloads import (
    ConsumerWorkload,
    ExecutionPhase,
    chrome_browser,
    default_workloads,
    tensorflow_mobile,
    vp9_capture,
    vp9_playback,
)
from repro.stacked.logic_layer import ComputeSiteKind


class TestWorkloadModels:
    def test_default_workloads_are_the_four_google_workloads(self):
        names = [w.name for w in default_workloads()]
        assert names == ["chrome", "tensorflow", "vp9_playback", "vp9_capture"]

    def test_every_workload_has_target_functions_and_host_work(self):
        for workload in default_workloads():
            assert workload.target_functions, workload.name
            assert workload.host_phases, workload.name
            assert workload.total_dram_bytes > 0
            assert workload.total_instructions > 0

    def test_target_functions_dominate_dram_traffic(self):
        """The study's premise: the identified target functions account for
        the majority of the workloads' DRAM traffic."""
        for workload in default_workloads():
            assert workload.target_dram_fraction() > 0.5, workload.name

    def test_workload_scales_with_parameters(self):
        small = chrome_browser(scroll_frames=10)
        large = chrome_browser(scroll_frames=100)
        assert large.total_dram_bytes > 5 * small.total_dram_bytes
        assert vp9_capture(frames=60).total_dram_bytes < vp9_capture(frames=240).total_dram_bytes
        assert tensorflow_mobile(layers=2).total_instructions < tensorflow_mobile(layers=16).total_instructions
        assert vp9_playback(width=1280, height=720).total_dram_bytes < vp9_playback().total_dram_bytes

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            ExecutionPhase("bad", True, host_instructions=-1, dram_bytes=0)
        with pytest.raises(ValueError):
            ExecutionPhase("bad", True, host_instructions=1, dram_bytes=1, streaming_fraction=2.0)

    def test_effective_pim_ops_defaults_to_instructions(self):
        phase = ExecutionPhase("p", True, host_instructions=100, dram_bytes=10)
        assert phase.effective_pim_ops == 100
        override = ExecutionPhase("p", True, host_instructions=100, dram_bytes=10, pim_ops=40)
        assert override.effective_pim_ops == 40


class TestEnergyModel:
    def test_account_arithmetic(self):
        account = EnergyAccount(compute_j=1.0, cache_j=0.5, interconnect_j=0.5, dram_j=2.0, static_j=1.0)
        assert account.data_movement_j == pytest.approx(3.0)
        assert account.total_j == pytest.approx(5.0)
        assert account.data_movement_fraction == pytest.approx(0.6)

    def test_empty_account_fraction_is_zero(self):
        assert EnergyAccount().data_movement_fraction == 0.0

    def test_phase_time_roofline(self):
        model = ConsumerEnergyModel()
        memory_bound = ExecutionPhase("m", True, host_instructions=1e3, dram_bytes=1e9)
        compute_bound = ExecutionPhase("c", True, host_instructions=1e12, dram_bytes=1e3)
        assert model.phase_time_s(memory_bound) == pytest.approx(
            1e9 / model.parameters.dram_bandwidth_bytes_per_s
        )
        assert model.phase_time_s(compute_bound) == pytest.approx(
            1e12 / model.parameters.cpu_ops_per_second
        )

    def test_scattered_traffic_is_slower(self):
        model = ConsumerEnergyModel()
        streaming = ExecutionPhase("s", True, 1.0, dram_bytes=1e9, streaming_fraction=1.0)
        scattered = ExecutionPhase("r", True, 1.0, dram_bytes=1e9, streaming_fraction=0.0)
        assert model.phase_time_s(scattered) > model.phase_time_s(streaming)

    def test_workload_account_is_sum_of_phases(self):
        model = ConsumerEnergyModel()
        workload = chrome_browser()
        total = model.workload_account(workload)
        summed = sum(model.phase_account(p).total_j for p in workload.phases)
        assert total.total_j == pytest.approx(summed)


class TestPimOffload:
    def test_offload_reduces_energy_for_every_workload(self):
        engine = PimOffloadEngine()
        model = ConsumerEnergyModel()
        for workload in default_workloads():
            host = model.workload_account(workload)
            for kind in (ComputeSiteKind.GENERAL_PURPOSE_CORE, ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR):
                result = engine.execute(workload, kind)
                assert result.account.total_j < host.total_j, (workload.name, kind)
                assert result.fits_budget

    def test_offloading_non_target_phase_rejected(self):
        engine = PimOffloadEngine()
        host_phase = default_workloads()[0].host_phases[0]
        from repro.stacked.logic_layer import PimComputeSite

        with pytest.raises(ValueError):
            engine.pim_phase_account(host_phase, PimComputeSite.in_order_core())

    def test_invalid_site_kind_rejected(self):
        engine = PimOffloadEngine()
        with pytest.raises(ValueError):
            engine.execute(default_workloads()[0], ComputeSiteKind.NONE)

    def test_vaults_used_must_be_positive(self):
        with pytest.raises(ValueError):
            PimOffloadEngine(vaults_used=0)


class TestConsumerStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return ConsumerStudy()

    def test_e6_data_movement_fraction_in_paper_band(self, study):
        """Paper: 62.7% of system energy is data movement (we accept 50-75%)."""
        fraction = study.average_data_movement_fraction()
        assert 0.50 < fraction < 0.75
        for report in study.energy_fraction_reports():
            assert 0.4 < report.data_movement_fraction < 0.85

    def test_e7_reductions_in_paper_band(self, study):
        """Paper: -55.4% energy and -54.2% time on average (we accept wide bands)."""
        averages = study.average_reductions()
        assert 35 < averages["pim_core_energy_reduction_percent"] < 70
        assert 35 < averages["pim_core_time_reduction_percent"] < 80
        assert 35 < averages["pim_accelerator_energy_reduction_percent"] < 70
        assert 50 < averages["pim_accelerator_time_reduction_percent"] < 95

    def test_e7_area_fits_budget(self, study):
        comparisons = study.offload_comparisons()
        for comparison in comparisons:
            assert comparison.pim_core.fits_budget
            assert comparison.pim_accelerator.fits_budget
            assert comparison.pim_core.area_fraction == pytest.approx(0.094, abs=0.01)
            assert comparison.pim_accelerator.area_fraction == pytest.approx(0.354, abs=0.02)

    def test_tables_render(self, study):
        assert "E6" in study.energy_fraction_table().render()
        assert "E7" in study.offload_table().render()
        assert "pim_core" in study.area_table().render()

    def test_offload_comparison_accessors(self, study):
        comparison = study.offload_comparisons()[0]
        assert comparison.energy_reduction_percent(ComputeSiteKind.GENERAL_PURPOSE_CORE) > 0
        with pytest.raises(ValueError):
            comparison.energy_reduction_percent(ComputeSiteKind.NONE)
