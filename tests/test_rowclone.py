"""Tests for repro.rowclone.engine."""

import numpy as np
import pytest

from repro.dram.device import DramDevice
from repro.hostsim.cpu import HostCpu
from repro.rowclone.engine import CopyMode, RowCloneEngine


@pytest.fixture
def engine(small_device) -> RowCloneEngine:
    return RowCloneEngine(small_device)


class TestRowLevelFunctional:
    def test_fpm_copy_moves_data(self, engine, small_device):
        bank = small_device.bank_at(0, 0, 0)
        data = np.random.default_rng(1).integers(0, 256, 64).astype(np.uint8)
        bank.write_row(3, data)
        metrics = engine.copy_row(bank, 3, 7)
        assert np.array_equal(bank.read_row(7), data)
        assert metrics.notes == "fpm"
        assert metrics.bytes_moved_on_channel == 0

    def test_inter_subarray_copy_falls_back_to_lisa(self, engine, small_device):
        bank = small_device.bank_at(0, 0, 0)
        data = np.full(64, 0x5A, dtype=np.uint8)
        bank.write_row(2, data)
        metrics = engine.copy_row(bank, 2, 40)  # rows 0-31 and 32-63 are different subarrays
        assert np.array_equal(bank.read_row(40), data)
        assert metrics.notes == "lisa"
        assert metrics.latency_ns > engine.device.timing.aap_ns

    def test_classification(self, engine, small_device):
        bank = small_device.bank_at(0, 0, 0)
        assert engine.classify_copy(bank, 0, 5) is CopyMode.FPM
        assert engine.classify_copy(bank, 0, 40) is CopyMode.INTER_SUBARRAY
        assert engine.classify_copy(bank, 0, 5, same_bank=False) is CopyMode.PSM

    def test_psm_copy_between_banks(self, engine, small_device):
        source = small_device.bank_at(0, 0, 0)
        dest = small_device.bank_at(0, 0, 1)
        data = np.arange(64, dtype=np.uint8)
        source.write_row(1, data)
        metrics = engine.copy_row_psm(source, 1, dest, 9)
        assert np.array_equal(dest.read_row(9), data)
        assert metrics.latency_ns > engine.device.timing.aap_ns

    def test_fill_row_clones_pattern(self, engine, small_device):
        bank = small_device.bank_at(0, 0, 1)
        metrics = engine.fill_row(bank, zero_row=0, dest_row=6, pattern=0)
        assert np.all(bank.read_row(6) == 0)
        assert metrics.bytes_produced == 64
        engine.fill_row(bank, zero_row=1, dest_row=7, pattern=0xFF)
        assert np.all(bank.read_row(7) == 0xFF)


class TestBulkAnalytical:
    def test_fpm_faster_than_psm(self):
        engine = RowCloneEngine(DramDevice.ddr3())
        fpm = engine.bulk_copy(8 << 20, CopyMode.FPM)
        psm = engine.bulk_copy(8 << 20, CopyMode.PSM)
        assert fpm.latency_ns < psm.latency_ns
        assert fpm.energy_j < psm.energy_j

    def test_rowclone_beats_cpu_copy(self):
        device = DramDevice.ddr3()
        engine = RowCloneEngine(device)
        cpu = HostCpu(dram=device)
        size = 16 << 20
        assert engine.bulk_copy(size).latency_ns < cpu.bulk_copy(size).latency_ns
        assert engine.bulk_copy(size).energy_j < cpu.bulk_copy(size).energy_j

    def test_single_page_copy_speedup_in_published_range(self):
        """RowClone-FPM copies one page in about one AAP; the CPU moves it
        over the channel.  The published per-page speedup is ~11x; allow a
        generous band around it."""
        device = DramDevice.ddr3()
        engine = RowCloneEngine(device)
        cpu = HostCpu(dram=device)
        page = device.geometry.row_size_bytes
        speedup = cpu.bulk_copy(page).latency_ns / engine.bulk_copy(page).latency_ns
        assert 5 < speedup < 40

    def test_bulk_fill_uses_one_aap_per_row(self):
        device = DramDevice.ddr3()
        engine = RowCloneEngine(device, banks_parallel=1)
        rows = 10
        metrics = engine.bulk_fill(rows * device.geometry.row_size_bytes)
        assert metrics.latency_ns == pytest.approx(rows * device.timing.aap_ns)

    def test_latency_scales_with_rows_per_bank(self):
        device = DramDevice.ddr3()
        engine = RowCloneEngine(device)
        one_round = engine.bulk_copy(device.geometry.banks_total * device.geometry.row_size_bytes)
        two_rounds = engine.bulk_copy(2 * device.geometry.banks_total * device.geometry.row_size_bytes)
        assert two_rounds.latency_ns == pytest.approx(2 * one_round.latency_ns)

    def test_negative_sizes_rejected(self):
        engine = RowCloneEngine(DramDevice.ddr3())
        with pytest.raises(ValueError):
            engine.bulk_copy(-1)
        with pytest.raises(ValueError):
            engine.bulk_fill(-1)
