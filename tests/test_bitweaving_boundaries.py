"""BitWeaving predicate boundary tests against a NumPy oracle.

Randomized tables are scanned at the predicate boundaries that historically
break bit-serial comparison code — the all-zeros constant, the all-ones
constant ``2**k - 1``, exact equality, and the endpoints of ``between``
ranges — on both the analytical and the functional execution backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.database.bitweaving import BitWeavingColumn
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.service import BatchScheduler


def _engine(banks: int = 2) -> AmbitEngine:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=32,
        row_size_bytes=64,
    )
    device = DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )
    return AmbitEngine(
        device, AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _random_codes(seed: int, num_bits: int, rows: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Bias towards the extremes so boundary values actually occur in the data.
    plain = rng.integers(0, 1 << num_bits, size=rows)
    extremes = rng.choice([0, (1 << num_bits) - 1], size=rows)
    pick = rng.random(rows) < 0.25
    return np.where(pick, extremes, plain)


def _oracle(codes: np.ndarray, predicate) -> np.ndarray:
    return np.packbits(predicate(codes).astype(np.uint8), bitorder="little")


def _scan(column, kind, constants, functional):
    """Run one scan on the chosen backend and return the packed result."""
    if functional:
        scheduler = BatchScheduler(engine=_engine())
        scheduler.submit_scan(column, kind, *constants)
        batch = scheduler.execute(functional=True)
        return batch.results[0].value
    result, _ = column.scan(kind, *constants)
    return result


class TestPredicateBoundaries:
    @pytest.mark.parametrize("functional", [False, True])
    @pytest.mark.parametrize("num_bits", [1, 3, 8])
    def test_constant_zero(self, num_bits, functional):
        codes = _random_codes(seed=1, num_bits=num_bits, rows=333)
        column = BitWeavingColumn(codes, num_bits)
        assert np.array_equal(
            _scan(column, "less_than", (0,), functional),
            _oracle(codes, lambda c: c < 0),
        )
        assert np.array_equal(
            _scan(column, "less_equal", (0,), functional),
            _oracle(codes, lambda c: c <= 0),
        )
        assert np.array_equal(
            _scan(column, "equal", (0,), functional),
            _oracle(codes, lambda c: c == 0),
        )

    @pytest.mark.parametrize("functional", [False, True])
    @pytest.mark.parametrize("num_bits", [1, 3, 8])
    def test_constant_all_ones(self, num_bits, functional):
        top = (1 << num_bits) - 1
        codes = _random_codes(seed=2, num_bits=num_bits, rows=333)
        column = BitWeavingColumn(codes, num_bits)
        assert np.array_equal(
            _scan(column, "less_than", (top,), functional),
            _oracle(codes, lambda c: c < top),
        )
        assert np.array_equal(
            _scan(column, "less_equal", (top,), functional),
            _oracle(codes, lambda c: c <= top),
        )
        assert np.array_equal(
            _scan(column, "equal", (top,), functional),
            _oracle(codes, lambda c: c == top),
        )

    @pytest.mark.parametrize("functional", [False, True])
    def test_between_endpoints_inclusive(self, functional):
        num_bits = 6
        top = (1 << num_bits) - 1
        codes = _random_codes(seed=3, num_bits=num_bits, rows=400)
        column = BitWeavingColumn(codes, num_bits)
        for low, high in [(0, 0), (top, top), (0, top), (17, 17), (5, 40)]:
            assert np.array_equal(
                _scan(column, "between", (low, high), functional),
                _oracle(codes, lambda c: (c >= low) & (c <= high)),
            ), (low, high)

    @settings(max_examples=30, deadline=None)
    @given(
        num_bits=st.integers(1, 8),
        seed=st.integers(0, 2**16),
        rows=st.integers(1, 500),
        functional=st.booleans(),
        pivot=st.integers(0, 255),
    )
    def test_property_boundaries_match_oracle(self, num_bits, seed, rows, functional, pivot):
        top = (1 << num_bits) - 1
        pivot %= 1 << num_bits
        codes = _random_codes(seed=seed, num_bits=num_bits, rows=rows)
        column = BitWeavingColumn(codes, num_bits)
        checks = [
            ("equal", (0,), lambda c: c == 0),
            ("equal", (top,), lambda c: c == top),
            ("equal", (pivot,), lambda c: c == pivot),
            ("less_than", (pivot,), lambda c: c < pivot),
            ("less_equal", (pivot,), lambda c: c <= pivot),
            ("between", (0, pivot), lambda c: (c >= 0) & (c <= pivot)),
            ("between", (pivot, top), lambda c: (c >= pivot) & (c <= top)),
        ]
        for kind, constants, predicate in checks:
            assert np.array_equal(
                _scan(column, kind, constants, functional), _oracle(codes, predicate)
            ), (kind, constants)

    def test_out_of_range_constants_rejected(self):
        column = BitWeavingColumn(np.array([0, 1, 2]), 2)
        with pytest.raises(ValueError):
            column.scan("equal", 4)
        with pytest.raises(ValueError):
            column.scan("less_than", -1)
        with pytest.raises(ValueError):
            column.scan("between", 3, 1)
        with pytest.raises(ValueError):
            column.scan("greater_than", 1)
