"""Tests for repro.ambit.allocator."""

import pytest

from repro.ambit.allocator import RowAllocator
from repro.ambit.rowgroups import AmbitSubarrayLayout


class TestAllocation:
    def test_chunks_round_robin_across_banks(self, small_device):
        allocator = RowAllocator(small_device)
        allocation = allocator.allocate(4)
        banks = [p.bank_key for p in allocation.placements]
        assert banks[0] != banks[1]
        assert banks[0] == banks[2]
        assert allocation.banks_used() == 2

    def test_allocations_are_subarray_aligned(self, small_device):
        allocator = RowAllocator(small_device)
        a = allocator.allocate(6)
        b = allocator.allocate(6)
        assert a.aligned_with(b)
        assert not a.aligned_with(allocator.allocate(4))

    def test_placements_stay_in_data_rows(self, small_device):
        allocator = RowAllocator(small_device)
        layout = allocator.layout
        allocation = allocator.allocate(8)
        for placement in allocation.placements:
            assert layout.is_data_row(placement.local_row)

    def test_bank_row_combines_subarray_and_local_row(self, small_device):
        allocator = RowAllocator(small_device)
        allocation = allocator.allocate(small_device.geometry.banks_total * 2)
        rows_per_subarray = small_device.geometry.rows_per_subarray
        for placement in allocation.placements:
            assert placement.bank_row == placement.subarray * rows_per_subarray + placement.local_row

    def test_capacity_and_exhaustion(self, small_device):
        allocator = RowAllocator(small_device)
        capacity = allocator.capacity_rows()
        assert capacity == (
            small_device.geometry.banks_total
            * small_device.geometry.subarrays_per_bank
            * allocator.layout.data_rows
        )
        allocator.allocate(capacity)
        with pytest.raises(MemoryError):
            allocator.allocate(1)

    def test_free_returns_most_recent_rows(self, small_device):
        allocator = RowAllocator(small_device)
        first = allocator.allocate(2)
        used_before = allocator.allocated_rows()
        allocator.free(first)
        assert allocator.allocated_rows() < used_before

    def test_failed_allocation_rolls_back_partial_placements(self, small_device):
        """Regression: a MemoryError mid-allocation must not leak the rows
        placed before the failure."""
        allocator = RowAllocator(small_device)
        capacity = allocator.capacity_rows()
        everything = allocator.allocate(capacity)
        allocator.free(everything)
        assert allocator.allocated_rows() == 0
        with pytest.raises(MemoryError):
            allocator.allocate(capacity + 1)
        assert allocator.allocated_rows() == 0
        # The full capacity is still allocatable afterwards.
        allocator.allocate(capacity)

    def test_invalid_requests_rejected(self, small_device):
        allocator = RowAllocator(small_device)
        with pytest.raises(ValueError):
            allocator.allocate(0)

    def test_layout_mismatch_rejected(self, small_device):
        with pytest.raises(ValueError):
            RowAllocator(small_device, AmbitSubarrayLayout(small_device.geometry.rows_per_subarray * 2))
