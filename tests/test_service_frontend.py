"""Tests for the admission-controlled service pipeline.

Frontend semantics under test:

* queue order — higher priority first, earliest deadline next, FIFO last,
* admission control — rejection on a full queue and on modeled bank
  occupancy, with rejected requests never served,
* deadline-miss accounting against the virtual clock,
* batch closing by size, time window, and deadline urgency, and
* the load-bearing acceptance property: results served through the
  pipeline are bit-exact with sequential execution, at identical energy,
  on both the analytical and the functional execution paths.

Lowering under test: bitmap-index conjunctions expand into primitive
bulk-operation chains whose values match :meth:`evaluate_conjunction` and
whose charged cost matches the plan-level cost model.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.queries import QueryEngine, ScanBackend
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.service import (
    BatchExecutor,
    BatchPlanner,
    BatchPolicy,
    BitmapConjunctionRequest,
    ScanRequest,
    ServiceFrontend,
    poisson_schedule,
    trace_schedule,
)


def _device(banks: int = 4, rows_per_subarray: int = 32) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=rows_per_subarray,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine(banks: int = 4) -> AmbitEngine:
    return AmbitEngine(
        _device(banks), AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _frontend(banks: int = 4, **kwargs) -> ServiceFrontend:
    executor = kwargs.pop("executor", None) or BatchExecutor(engine=_engine(banks))
    return ServiceFrontend(executor=executor, **kwargs)


def _random_column(rng, num_bits: int, rows: int) -> BitWeavingColumn:
    return BitWeavingColumn(rng.integers(0, 1 << num_bits, size=rows), num_bits)


def _scan(column: BitWeavingColumn, kind: str = "less_than", *constants: int) -> ScanRequest:
    if not constants:
        constants = (1 << (column.num_bits - 1),)
    return ScanRequest(column=column, kind=kind, constants=constants)


def _bitmap_index(rng, rows: int = 400) -> BitmapIndex:
    table = ColumnTable("t", rows)
    table.add_column("region", rng.integers(0, 8, size=rows), cardinality=8)
    table.add_column("status", rng.integers(0, 4, size=rows), cardinality=4)
    return BitmapIndex(table, ["region", "status"])


class TestQueueSemantics:
    def test_priority_classes_served_first(self):
        rng = np.random.default_rng(0)
        frontend = _frontend(policy=BatchPolicy(max_batch=4))
        columns = [_random_column(rng, 6, 200) for _ in range(8)]
        records = [
            frontend.offer(_scan(column), priority=priority)
            for priority, column in enumerate(columns)
        ]
        frontend.drain()
        # Eight requests, batches of four: the four highest priorities go
        # into batch 0, the rest into batch 1.
        assert [r.batch_index for r in records] == [1, 1, 1, 1, 0, 0, 0, 0]
        assert all(r.completed for r in records)

    def test_earlier_deadline_first_within_a_priority(self):
        rng = np.random.default_rng(1)
        frontend = _frontend(policy=BatchPolicy(max_batch=2))
        columns = [_random_column(rng, 6, 200) for _ in range(4)]
        deadlines = [4e6, 1e6, 3e6, 2e6]
        records = [
            frontend.offer(_scan(column), deadline_ns=deadline)
            for column, deadline in zip(columns, deadlines)
        ]
        frontend.drain()
        # Batches of two: the two earliest deadlines (1e6, 2e6) first.
        assert [r.batch_index for r in records] == [1, 0, 1, 0]

    def test_fifo_tiebreak_within_equal_keys(self):
        rng = np.random.default_rng(2)
        frontend = _frontend(policy=BatchPolicy(max_batch=2))
        columns = [_random_column(rng, 6, 200) for _ in range(4)]
        records = [frontend.offer(_scan(column)) for column in columns]
        frontend.drain()
        assert [r.batch_index for r in records] == [0, 0, 1, 1]

    def test_wait_and_sojourn_accounting(self):
        rng = np.random.default_rng(3)
        frontend = _frontend(policy=BatchPolicy(max_batch=8))
        column = _random_column(rng, 6, 200)
        records = [frontend.offer(_scan(column, "less_than", c)) for c in (5, 20, 40)]
        frontend.drain()
        for record in records:
            assert record.wait_ns >= 0.0
            # A single-primitive request is in service for exactly its
            # sequential latency.
            assert record.sojourn_ns - record.wait_ns == pytest.approx(
                record.metrics.latency_ns
            )
        # Same column => same banks: the three scans serialize, so waits
        # within the batch are strictly increasing.
        waits = sorted(r.wait_ns for r in records)
        assert waits[0] == pytest.approx(0.0)
        assert waits[1] > 0.0 and waits[2] > waits[1]


class TestAdmissionControl:
    def test_full_queue_rejects(self):
        rng = np.random.default_rng(4)
        frontend = _frontend(max_queue_depth=3)
        columns = [_random_column(rng, 6, 200) for _ in range(5)]
        records = [frontend.offer(_scan(column)) for column in columns]
        assert [r.admitted for r in records] == [True, True, True, False, False]
        assert all(r.rejected_reason == "queue_full" for r in records[3:])
        frontend.drain()
        result = frontend.result()
        assert result.metrics.offered == 5
        assert result.metrics.admitted == 3
        assert result.metrics.rejected == 2
        assert result.metrics.completed == 3
        # Rejected requests were never served.
        assert all(not r.completed and math.isnan(r.start_ns) for r in records[3:])

    def test_bank_occupancy_rejects(self):
        rng = np.random.default_rng(5)
        column = _random_column(rng, 8, 400)
        executor = BatchExecutor(engine=_engine())
        probe = _scan(column)
        per_request_ns = executor.modeled_latency_ns(probe)
        frontend = ServiceFrontend(
            executor=executor,
            max_queue_depth=100,
            max_backlog_ns=per_request_ns,  # room for ~banks requests
        )
        records = [
            frontend.offer(_scan(_random_column(rng, 8, 400))) for _ in range(10)
        ]
        rejected = [r for r in records if not r.admitted]
        assert rejected, "occupancy bound should reject under this load"
        assert all(r.rejected_reason == "bank_occupancy" for r in rejected)
        admitted_backlog = sum(r.modeled_ns for r in records if r.admitted)
        banks = frontend.executor.engine.config.banks_parallel
        assert admitted_backlog / banks <= per_request_ns * (1 + 1e-9)

    def test_queue_drains_and_readmits(self):
        rng = np.random.default_rng(6)
        frontend = _frontend(max_queue_depth=2, policy=BatchPolicy(max_batch=2))
        column = _random_column(rng, 6, 200)
        first = [frontend.offer(_scan(column, "less_than", c)) for c in (1, 2, 3)]
        assert [r.admitted for r in first] == [True, True, False]
        frontend.serve_batch()
        second = frontend.offer(_scan(column, "less_than", 4))
        assert second.admitted
        frontend.drain()
        assert frontend.result().metrics.completed == 3


class TestDeadlines:
    def test_deadline_misses_are_counted(self):
        rng = np.random.default_rng(7)
        frontend = _frontend(policy=BatchPolicy(max_batch=8))
        column = _random_column(rng, 8, 400)
        impossible = frontend.offer(_scan(column), deadline_ns=1.0)
        generous = frontend.offer(
            _scan(_random_column(rng, 8, 400)), deadline_ns=1e12
        )
        frontend.drain()
        assert impossible.deadline_missed
        assert not generous.deadline_missed
        assert frontend.result().metrics.deadline_misses == 1

    def test_urgent_deadline_closes_batch_early(self):
        rng = np.random.default_rng(8)
        policy = BatchPolicy(max_batch=64, window_ns=None, urgency_slack_ns=0.0)
        frontend = _frontend(policy=policy)
        column = _random_column(rng, 6, 200)
        request = _scan(column)
        executor = frontend.executor
        latency = executor.modeled_latency_ns(request)
        events = trace_schedule(
            [request, _scan(_random_column(rng, 6, 200))],
            arrival_times_ns=[0.0, 10 * latency],
            deadlines_ns=[latency * 1.5, None],
        )
        result = frontend.run(events)
        # Without urgency the batch would wait for the second arrival (the
        # batch is far from full and no window is set); urgency must close
        # it in time to make the deadline.
        assert result.metrics.deadline_misses == 0
        assert result.metrics.batches == 2

    def test_window_bounds_the_wait(self):
        rng = np.random.default_rng(9)
        window = 1e5
        frontend = _frontend(policy=BatchPolicy(max_batch=64, window_ns=window))
        column = _random_column(rng, 6, 200)
        scans = [_scan(_random_column(rng, 6, 200)) for _ in range(4)]
        # Arrivals spaced well inside the window, far fewer than max_batch:
        # only the window can close the batch before the stream ends.
        events = trace_schedule(scans, arrival_times_ns=[0.0, 1e4, 2e4, window + 2e4])
        result = frontend.run(events)
        assert result.metrics.batches >= 2
        first_batch = [r for r in result.records if r.batch_index == 0]
        assert all(r.arrival_ns + window <= r.start_ns + 1e-6 or r.wait_ns <= window * 2
                   for r in first_batch)


class TestPipelineBitExactness:
    @settings(max_examples=20, deadline=None)
    @given(
        num_bits=st.integers(1, 6),
        rows=st.integers(1, 300),
        seed=st.integers(0, 2**16),
        constants=st.lists(st.integers(0, 63), min_size=1, max_size=5),
        functional=st.booleans(),
    )
    def test_pipeline_matches_sequential(self, num_bits, rows, seed, constants, functional):
        """Acceptance: pipeline output == sequential output, same energy."""
        rng = np.random.default_rng(seed)
        columns = [_random_column(rng, num_bits, rows) for _ in range(2)]
        kinds = ["less_than", "less_equal", "equal", "between"]
        scans = []
        for i, constant in enumerate(constants):
            constant %= 1 << num_bits
            kind = kinds[i % len(kinds)]
            column = columns[i % len(columns)]
            if kind == "between":
                high = max(constant, (1 << num_bits) - 1 - constant)
                scans.append((column, kind, (min(constant, high), high)))
            else:
                scans.append((column, kind, (constant,)))

        frontend = _frontend(
            policy=BatchPolicy(max_batch=3),
            max_queue_depth=64,
            functional=functional,
        )
        requests = [ScanRequest(column=c, kind=k, constants=cs) for c, k, cs in scans]
        events = poisson_schedule(requests, rate_per_s=2e6, seed=seed)
        result = frontend.run(events)

        assert result.metrics.completed == len(scans)
        assert result.metrics.rejected == 0
        query_engine = QueryEngine(ambit=frontend.executor.engine)
        serial_energy = 0.0
        by_request = {id(r.request): r for r in result.records}
        for (column, kind, cs), request in zip(scans, requests):
            record = by_request[id(request)]
            expected, plan = column.scan(kind, *cs)
            assert np.array_equal(record.value, expected)
            sequential = query_engine.ambit_scan_cost(plan)
            assert record.metrics.latency_ns == pytest.approx(sequential.latency_ns)
            assert record.metrics.energy_j == pytest.approx(sequential.energy_j)
            serial_energy += sequential.energy_j
        assert result.metrics.energy_j == pytest.approx(serial_energy)
        # Bank overlap may only shrink the busy time, never the work.
        assert result.metrics.busy_ns <= result.metrics.serial_latency_ns * (1 + 1e-9)

    def test_reused_frontend_reports_per_call_metrics(self):
        """Regression: a second call on one frontend must not fold the
        first call's traffic into its report, and arrivals must start at
        the frontend's advanced clock (identical seeds => identical
        per-call dynamics)."""
        rng = np.random.default_rng(18)
        executor = BatchExecutor(engine=_engine())
        frontend = ServiceFrontend(executor=executor, max_queue_depth=256)
        query_engine = QueryEngine(ambit=executor.engine)
        columns = [_random_column(rng, 8, 400) for _ in range(3)]
        scans = [(c, "less_than", (40,)) for c in columns]
        first, first_metrics = query_engine.scan_query_pipeline(
            scans, ScanBackend.AMBIT, rate_per_s=1e6, seed=1, frontend=frontend,
            deadline_slack_ns=1e9,
        )
        second, second_metrics = query_engine.scan_query_pipeline(
            scans, ScanBackend.AMBIT, rate_per_s=1e6, seed=1, frontend=frontend,
            deadline_slack_ns=1e9,
        )
        assert first_metrics.completed == len(scans)
        assert second_metrics.completed == len(scans)
        assert second.serial_latency_ns == pytest.approx(first.serial_latency_ns)
        assert second.energy_j == pytest.approx(first.energy_j)
        # Same seed and an idle frontend: the second call's queueing
        # dynamics replay the first call's, just shifted on the clock.
        assert second_metrics.wait_p50_ns == pytest.approx(first_metrics.wait_p50_ns)
        assert second_metrics.sojourn_p99_ns == pytest.approx(first_metrics.sojourn_p99_ns)
        assert second_metrics.deadline_misses == first_metrics.deadline_misses == 0

    def test_caller_frontend_keeps_its_functional_flag(self):
        """Regression: the pipeline call borrows, never overwrites, a
        caller frontend's functional setting."""
        rng = np.random.default_rng(22)
        executor = BatchExecutor(engine=_engine())
        frontend = ServiceFrontend(executor=executor, functional=True)
        query_engine = QueryEngine(ambit=executor.engine)
        scans = [(_random_column(rng, 6, 200), "less_than", (20,))]
        query_engine.scan_query_pipeline(
            scans, ScanBackend.AMBIT, rate_per_s=1e6, frontend=frontend
        )
        assert frontend.functional is True  # None default: frontend's own setting
        query_engine.scan_query_pipeline(
            scans, ScanBackend.AMBIT, rate_per_s=1e6, frontend=frontend,
            functional=False,
        )
        assert frontend.functional is True  # explicit False applied per call only

    def test_rejections_keep_result_to_query_mapping(self):
        """Regression: rejected scans leave gaps; request_indices maps
        each result back to its source query."""
        rng = np.random.default_rng(19)
        executor = BatchExecutor(engine=_engine())
        frontend = ServiceFrontend(executor=executor, max_queue_depth=2)
        query_engine = QueryEngine(ambit=executor.engine)
        columns = [_random_column(rng, 8, 400) for _ in range(6)]
        scans = [(c, "equal", (i * 7,)) for i, c in enumerate(columns)]
        batch, metrics = query_engine.scan_query_pipeline(
            scans, ScanBackend.AMBIT, rate_per_s=1e9, seed=4, frontend=frontend
        )
        assert metrics.rejected > 0
        assert len(batch.results) == metrics.completed < len(scans)
        assert len(batch.request_indices) == len(batch.results)
        for request_index, result in zip(batch.request_indices, batch.results):
            column, kind, constants = scans[request_index]
            expected_bits, plan = column.scan(kind, *constants)
            single = query_engine.execute_scan(
                expected_bits, plan, column.num_rows, ScanBackend.AMBIT
            )
            assert result.matching_rows == single.matching_rows

    def test_cpu_and_ambit_pipelines_agree_on_results(self):
        rng = np.random.default_rng(10)
        columns = [_random_column(rng, 8, 400) for _ in range(4)]
        scans = [(c, "between", (20, 180)) for c in columns]
        query_engine = QueryEngine(ambit=_engine())
        outcomes = {}
        for backend in (ScanBackend.CPU, ScanBackend.AMBIT):
            batch, metrics = query_engine.scan_query_pipeline(
                scans, backend, rate_per_s=1e6, seed=3
            )
            assert metrics.completed == len(scans)
            outcomes[backend] = batch
        cpu, ambit = outcomes[ScanBackend.CPU], outcomes[ScanBackend.AMBIT]
        assert [q.matching_rows for q in cpu.results] == [
            q.matching_rows for q in ambit.results
        ]


class TestBitmapConjunctionLowering:
    @pytest.mark.parametrize("functional", [False, True])
    def test_lowered_conjunction_matches_evaluate(self, functional):
        rng = np.random.default_rng(11)
        index = _bitmap_index(rng)
        frontend = _frontend(functional=functional)
        conjunctions = [
            (("region", (1, 2, 3)), ("status", (0, 1))),
            (("region", (0,)), ("status", (2,))),
            (("region", (4, 5)),),
            (("region", (6,)),),  # single bitmap: lowers to zero operations
        ]
        records = [
            frontend.offer(BitmapConjunctionRequest(index=index, predicates=c))
            for c in conjunctions
        ]
        frontend.drain()
        query_engine = QueryEngine(ambit=frontend.executor.engine)
        for conjunction, record in zip(conjunctions, records):
            expected, plan = index.evaluate_conjunction(list(conjunction))
            assert np.array_equal(record.value, expected)
            cost = query_engine.ambit_scan_cost(plan)
            assert record.metrics.latency_ns == pytest.approx(cost.latency_ns)
            assert record.metrics.energy_j == pytest.approx(cost.energy_j)

    def test_conjunction_chain_serializes_on_its_banks(self):
        """Data-dependent lowered steps must not overlap in the schedule."""
        rng = np.random.default_rng(12)
        index = _bitmap_index(rng)
        frontend = _frontend()
        conjunction = (("region", (0, 1, 2, 3)), ("status", (0, 1)))
        record = frontend.offer(BitmapConjunctionRequest(index=index, predicates=conjunction))
        frontend.drain()
        # Chain of 5 ops (3 ORs + 1 OR + 1 AND): sojourn equals the serial
        # sum because every step contends for the conjunction's banks.
        assert record.sojourn_ns == pytest.approx(record.metrics.latency_ns)

    @pytest.mark.parametrize("functional", [False, True])
    def test_multi_row_conjunction_cost_matches_plan_model(self, functional):
        """Regression: lowering must price vectors at the *device* row size.

        4096 rows pack to 512 bytes = 8 chunks on the 64-byte-row test
        device (but a single chunk at the 8 KiB host default); a row-size
        mismatch in lowering under-charges the analytical path 8x.
        """
        rng = np.random.default_rng(17)
        index = _bitmap_index(rng, rows=4096)
        frontend = _frontend(functional=functional)
        conjunction = (("region", (1, 2, 3)), ("status", (0, 1)))
        record = frontend.offer(BitmapConjunctionRequest(index=index, predicates=conjunction))
        frontend.drain()
        expected, plan = index.evaluate_conjunction(list(conjunction))
        assert np.array_equal(record.value, expected)
        cost = QueryEngine(ambit=frontend.executor.engine).ambit_scan_cost(plan)
        assert record.metrics.latency_ns == pytest.approx(cost.latency_ns)
        assert record.metrics.energy_j == pytest.approx(cost.energy_j)

    def test_conjunctions_lower_through_query_engine(self):
        rng = np.random.default_rng(13)
        index = _bitmap_index(rng)
        query_engine = QueryEngine(ambit=_engine())
        conjunctions = [
            [("region", [1, 2]), ("status", [0])],
            [("region", [3]), ("status", [1, 2])],
        ]
        batch = query_engine.bitmap_conjunction_query_batch(
            index, conjunctions, ScanBackend.AMBIT, functional=True
        )
        for predicates, result in zip(conjunctions, batch.results):
            single = query_engine.bitmap_conjunction_query(
                index, predicates, ScanBackend.AMBIT
            )
            assert result.matching_rows == single.matching_rows
            assert result.latency_ns == pytest.approx(single.latency_ns)
            assert result.energy_j == pytest.approx(single.energy_j)


class TestSampledVerification:
    def test_verify_fraction_samples_deterministically(self):
        rng = np.random.default_rng(14)
        column = _random_column(rng, 8, 300)
        executors = []
        for _ in range(2):
            executor = BatchExecutor(engine=_engine(), verify_fraction=0.4, verify_seed=9)
            requests = [
                ScanRequest(column=column, kind="less_than", constants=(c,))
                for c in range(20)
            ]
            batch = executor.run(requests, functional=True)
            for c, result in zip(range(20), batch.results):
                expected, _ = column.scan("less_than", c)
                assert np.array_equal(result.value, expected)
            executors.append(executor)
        first, second = executors
        assert 0 < first.functional_executed < 20
        assert first.functional_executed + first.sampled_out == 20
        # Deterministic: an identical executor samples the identical subset.
        assert first.functional_executed == second.functional_executed
        assert [first._verify_sampled(0, i) for i in range(20)] == [
            second._verify_sampled(0, i) for i in range(20)
        ]

    def test_verify_fraction_bounds(self):
        with pytest.raises(ValueError):
            BatchExecutor(engine=_engine(), verify_fraction=1.5)
        executor = BatchExecutor(engine=_engine(), verify_fraction=0.0)
        rng = np.random.default_rng(15)
        column = _random_column(rng, 6, 200)
        batch = executor.run(
            [ScanRequest(column=column, kind="equal", constants=(7,))], functional=True
        )
        expected, _ = column.scan("equal", 7)
        assert np.array_equal(batch.results[0].value, expected)
        assert executor.functional_executed == 0
        assert executor.sampled_out == 1

    def test_full_verification_is_the_default(self):
        executor = BatchExecutor(engine=_engine())
        rng = np.random.default_rng(16)
        column = _random_column(rng, 6, 200)
        executor.run(
            [ScanRequest(column=column, kind="equal", constants=(3,))], functional=True
        )
        assert executor.functional_executed == 1
        assert executor.sampled_out == 0


class TestStagedHostVectors:
    def test_staged_functional_charges_analytical_cost(self):
        """Regression: a host-only bulk op charges identical latency and
        energy whether it runs analytically or staged onto the banks —
        the staged vectors' device-row chunking must not leak into the
        bill (the test device's 64 B rows differ from the 8 KiB host
        default, which is exactly the divergent case)."""
        from repro.ambit.bitvector import BulkBitVector
        from repro.service import BulkOpRequest

        results = []
        for functional in (False, True):
            executor = BatchExecutor(engine=_engine())
            # 2 KiB payload: one 8 KiB host row chunk, but 32 chunks of the
            # test device's 64 B rows once staged.
            a = BulkBitVector(2048 * 8).fill_random(seed=1)
            b = BulkBitVector(2048 * 8).fill_random(seed=2)
            batch = executor.run(
                [BulkOpRequest(op="xor", a=a, b=b, bank_offset=0)],
                functional=functional,
            )
            results.append(batch.results[0])
        analytical, staged = results
        assert np.array_equal(analytical.value.data, staged.value.data)
        assert staged.metrics.latency_ns == pytest.approx(analytical.metrics.latency_ns)
        assert staged.metrics.energy_j == pytest.approx(analytical.metrics.energy_j)
