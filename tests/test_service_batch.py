"""Tests for repro.service — batched execution of bulk in-DRAM operations.

The load-bearing properties:

* batched results are bit-exact with one-at-a-time sequential execution on
  both the analytical and the functional path,
* a batch charges exactly the energy sequential execution would, and
* the batch latency (makespan) only improves through bank-level overlap:
  it is never below the longest single request, never below the serial
  latency divided by the bank count, and never above the serial latency.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.metrics import BatchMetrics, combine_serial
from repro.database.bitweaving import BitWeavingColumn
from repro.database.queries import QueryEngine, ScanBackend
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.rowclone.engine import CopyMode
from repro.service import BatchScheduler, BulkOpRequest, CopyRequest, ScanRequest, VectorPool


def _device(banks: int = 4, rows_per_subarray: int = 32) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=rows_per_subarray,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine(banks: int = 4, vectorized: bool = True) -> AmbitEngine:
    device = _device(banks)
    return AmbitEngine(
        device,
        AmbitConfig(banks_parallel=banks, vectorized_functional=vectorized),
    )


def _random_column(rng, num_bits: int, rows: int) -> BitWeavingColumn:
    return BitWeavingColumn(rng.integers(0, 1 << num_bits, size=rows), num_bits)


class TestBatchedScansBitExact:
    @pytest.mark.parametrize("functional", [False, True])
    def test_mixed_scan_batch_matches_sequential(self, functional):
        rng = np.random.default_rng(3)
        scheduler = BatchScheduler(engine=_engine())
        columns = [_random_column(rng, 8, 300) for _ in range(3)]
        scans = []
        for i, column in enumerate(columns):
            scans.append((column, "between", (10, 200)))
            scans.append((column, "equal", (i * 11,)))
            scans.append((column, "less_than", (255,)))
            scans.append((column, "less_equal", (0,)))
        for column, kind, constants in scans:
            scheduler.submit_scan(column, kind, *constants)
        batch = scheduler.execute(functional=functional)

        assert len(batch) == len(scans)
        for (column, kind, constants), result in zip(scans, batch.results):
            expected, _ = column.scan(kind, *constants)
            assert np.array_equal(result.value, expected)

    @settings(max_examples=25, deadline=None)
    @given(
        num_bits=st.integers(1, 6),
        rows=st.integers(1, 400),
        seed=st.integers(0, 2**16),
        constants=st.lists(st.integers(0, 63), min_size=1, max_size=6),
        functional=st.booleans(),
    )
    def test_property_batch_bit_exact_with_sequential(
        self, num_bits, rows, seed, constants, functional
    ):
        """The acceptance property: BatchScheduler output == sequential output."""
        rng = np.random.default_rng(seed)
        column = _random_column(rng, num_bits, rows)
        scheduler = BatchScheduler(engine=_engine())
        kinds = ["less_than", "less_equal", "equal", "between"]
        scans = []
        for i, constant in enumerate(constants):
            constant %= 1 << num_bits
            kind = kinds[i % len(kinds)]
            if kind == "between":
                high = max(constant, (1 << num_bits) - 1 - constant)
                scans.append((column, kind, (min(constant, high), high)))
            else:
                scans.append((column, kind, (constant,)))
        for _, kind, cs in scans:
            scheduler.submit_scan(column, kind, *cs)
        batch = scheduler.execute(functional=functional)

        serial_energy = 0.0
        serial_latency = 0.0
        query_engine = QueryEngine(ambit=scheduler.engine)
        for (column_, kind, cs), result in zip(scans, batch.results):
            expected, plan = column_.scan(kind, *cs)
            # Bit-exact with sequential execution.
            assert np.array_equal(result.value, expected)
            # Per-request cost identical to the sequential cost model.
            sequential = query_engine.ambit_scan_cost(plan)
            assert result.metrics.latency_ns == pytest.approx(sequential.latency_ns)
            assert result.metrics.energy_j == pytest.approx(sequential.energy_j)
            serial_energy += sequential.energy_j
            serial_latency += sequential.latency_ns

        # Batch energy is exactly the sequential sum; latency only improves
        # via bank overlap and never below the per-bank bound.
        assert batch.metrics.energy_j == pytest.approx(serial_energy)
        assert batch.metrics.serial_latency_ns == pytest.approx(serial_latency)
        assert batch.metrics.latency_ns <= serial_latency * (1 + 1e-9)
        longest = max(r.metrics.latency_ns for r in batch.results)
        banks = scheduler.engine.config.banks_parallel
        assert batch.metrics.latency_ns >= longest * (1 - 1e-9)
        assert batch.metrics.latency_ns >= serial_latency / banks * (1 - 1e-9)

    def test_functional_and_analytical_batches_agree(self):
        rng = np.random.default_rng(11)
        column = _random_column(rng, 7, 500)
        scans = [("between", (5, 100)), ("equal", (64,)), ("less_than", (33,))]

        outputs = []
        for functional in (False, True):
            scheduler = BatchScheduler(engine=_engine())
            for kind, constants in scans:
                scheduler.submit_scan(column, kind, *constants)
            batch = scheduler.execute(functional=functional)
            outputs.append(batch)
        for a, b in zip(outputs[0].results, outputs[1].results):
            assert np.array_equal(a.value, b.value)
            assert a.metrics.latency_ns == pytest.approx(b.metrics.latency_ns)
            assert a.metrics.energy_j == pytest.approx(b.metrics.energy_j)

    def test_fusion_changes_no_results_or_costs(self):
        rng = np.random.default_rng(5)
        column = _random_column(rng, 8, 256)
        batches = []
        for fuse in (True, False):
            scheduler = BatchScheduler(engine=_engine(), fuse=fuse)
            scheduler.submit_scan(column, "between", 20, 220)
            scheduler.submit_scan(column, "between", 40, 200)
            batches.append(scheduler.execute(functional=True))
        fused, unfused = batches
        for a, b in zip(fused.results, unfused.results):
            assert np.array_equal(a.value, b.value)
            assert a.metrics.energy_j == pytest.approx(b.metrics.energy_j)
        assert fused.metrics.energy_j == pytest.approx(unfused.metrics.energy_j)
        assert fused.metrics.latency_ns == pytest.approx(unfused.metrics.latency_ns)
        assert "fused" in fused.metrics.notes


class TestBatchedBulkOps:
    @pytest.mark.parametrize("functional", [False, True])
    def test_bulk_ops_bit_exact_with_direct_execution(self, functional):
        engine = _engine()
        scheduler = BatchScheduler(engine=engine)
        a = engine.alloc_vector(600).fill_random(seed=1)
        b = engine.alloc_vector(600).fill_random(seed=2)
        c = engine.alloc_vector(600).fill_random(seed=3)
        scheduler.submit_bulk_op("xor", a, b)
        scheduler.submit_bulk_op("nand", b, c)
        scheduler.submit_bulk_op("not", a)
        batch = scheduler.execute(functional=functional)

        reference_engine = _engine()
        ra = reference_engine.alloc_vector(600)
        rb = reference_engine.alloc_vector(600)
        rc = reference_engine.alloc_vector(600)
        ra.data[:] = a.data
        rb.data[:] = b.data
        rc.data[:] = c.data
        for (op, x, y), result in zip(
            [("xor", ra, rb), ("nand", rb, rc), ("not", ra, None)], batch.results
        ):
            expected, metrics = reference_engine.execute(op, x, y, functional=functional)
            assert np.array_equal(result.value.data, expected.data)
            assert result.metrics.latency_ns == pytest.approx(metrics.latency_ns)
            assert result.metrics.energy_j == pytest.approx(metrics.energy_j)

    def test_copies_charge_rowclone_costs(self):
        engine = _engine()
        scheduler = BatchScheduler(engine=engine)
        scheduler.submit_copy(1024)
        scheduler.submit_copy(4096, mode=CopyMode.PSM)
        scheduler.submit_copy(2048, fill=True)
        batch = scheduler.execute()
        reference = [
            scheduler.rowclone.bulk_copy(1024),
            scheduler.rowclone.bulk_copy(4096, CopyMode.PSM),
            scheduler.rowclone.bulk_fill(2048),
        ]
        for result, expected in zip(batch.results, reference):
            assert result.metrics.latency_ns == pytest.approx(expected.latency_ns)
            assert result.metrics.energy_j == pytest.approx(expected.energy_j)
        assert batch.metrics.energy_j == pytest.approx(sum(m.energy_j for m in reference))

    def test_mixed_batch_overlaps_across_banks(self):
        """Single-row requests on different banks overlap; makespan shrinks."""
        rng = np.random.default_rng(9)
        scheduler = BatchScheduler(engine=_engine(banks=4))
        # Four single-row-columns land on four distinct banks.
        columns = [_random_column(rng, 6, 200) for _ in range(4)]
        for column in columns:
            scheduler.submit_scan(column, "less_than", 30)
        batch = scheduler.execute()
        assert batch.metrics.batching_speedup > 2.0
        assert batch.metrics.latency_ns < batch.metrics.serial_latency_ns

    def test_transient_columns_keep_full_overlap(self):
        """Regression: recycled ids of dead columns must not hand stale bank
        offsets to new columns and cluster them onto the same banks."""
        rng = np.random.default_rng(13)
        scheduler = BatchScheduler(engine=_engine(banks=4))
        speedups = []
        for _ in range(3):
            columns = [_random_column(rng, 6, 200) for _ in range(4)]
            for column in columns:
                scheduler.submit_scan(column, "less_than", 30)
            speedups.append(scheduler.execute().metrics.batching_speedup)
            del columns  # allow id reuse for the next round's columns
        assert all(s == pytest.approx(speedups[0]) for s in speedups)
        assert speedups[0] > 2.0

    def test_scans_of_one_column_contend_for_its_banks(self):
        """A column's planes live in fixed banks: no overlap within a column."""
        rng = np.random.default_rng(9)
        scheduler = BatchScheduler(engine=_engine(banks=4))
        column = _random_column(rng, 6, 200)
        for constant in (5, 10, 20, 40):
            scheduler.submit_scan(column, "less_than", constant)
        batch = scheduler.execute()
        assert batch.metrics.latency_ns == pytest.approx(batch.metrics.serial_latency_ns)


class TestLptScheduling:
    """LPT makespan fix: requests are placed longest-first onto their banks."""

    @staticmethod
    def _lpt_instance(scheduler):
        """Two short single-bank ops followed by a long two-bank op.

        Submission order forces the two-bank NOT between the two XORs: it
        waits for bank 0, then blocks bank 1, so the second XOR queues
        behind it.  LPT places the two XORs (the long jobs) first, letting
        them run concurrently with the NOT packed after — a strictly
        smaller makespan.
        """
        row_bits = 8192 * 8  # one row chunk at the host-side default row size
        a1 = BulkBitVector(row_bits).fill_random(seed=1)
        b1 = BulkBitVector(row_bits).fill_random(seed=2)
        a2 = BulkBitVector(row_bits).fill_random(seed=3)
        b2 = BulkBitVector(row_bits).fill_random(seed=4)
        wide = BulkBitVector(2 * row_bits).fill_random(seed=5)
        from repro.service import BulkOpRequest

        scheduler.submit(BulkOpRequest(op="xor", a=a1, b=b1, bank_offset=0))
        scheduler.submit(BulkOpRequest(op="not", a=wide, bank_offset=0))
        scheduler.submit(BulkOpRequest(op="xor", a=a2, b=b2, bank_offset=1))

    def test_lpt_makespan_not_worse_than_submission_order(self):
        batches = {}
        for lpt in (False, True):
            scheduler = BatchScheduler(engine=_engine(banks=2), lpt=lpt)
            self._lpt_instance(scheduler)
            batches[lpt] = scheduler.execute()
        greedy, lpt = batches[False], batches[True]
        assert lpt.metrics.latency_ns < greedy.metrics.latency_ns
        # Ordering moves start times only: results and charged costs are
        # bit-exact between the two schedules.
        for a, b in zip(lpt.results, greedy.results):
            assert np.array_equal(a.value.data, b.value.data)
            assert a.metrics.latency_ns == pytest.approx(b.metrics.latency_ns)
            assert a.metrics.energy_j == pytest.approx(b.metrics.energy_j)
        assert lpt.metrics.energy_j == pytest.approx(greedy.metrics.energy_j)
        assert lpt.metrics.serial_latency_ns == pytest.approx(
            greedy.metrics.serial_latency_ns
        )

    def test_lpt_is_the_default_and_respects_bounds(self):
        rng = np.random.default_rng(21)
        scheduler = BatchScheduler(engine=_engine(banks=4))
        assert scheduler.executor.lpt
        columns = [_random_column(rng, 6, 200) for _ in range(4)]
        for column in columns:
            scheduler.submit_scan(column, "less_than", 30)
            scheduler.submit_scan(column, "between", 5, 50)
        batch = scheduler.execute()
        longest = max(r.metrics.latency_ns for r in batch.results)
        assert batch.metrics.latency_ns >= longest * (1 - 1e-9)
        assert batch.metrics.latency_ns <= batch.metrics.serial_latency_ns * (1 + 1e-9)


class TestEngineVectorizedFunctional:
    @pytest.mark.parametrize("op", ["not", "and", "or", "nand", "nor", "xor", "xnor"])
    def test_vectorized_matches_row_level_path(self, op):
        strict = _engine(vectorized=False)
        vectorized = _engine(vectorized=True)
        results = []
        for engine in (strict, vectorized):
            a = engine.alloc_vector(1003).fill_random(seed=21)
            b = engine.alloc_vector(1003).fill_random(seed=22) if op != "not" else None
            out, metrics = engine.execute(op, a, b, functional=True)
            results.append((out, metrics))
        (strict_out, strict_metrics), (vector_out, vector_metrics) = results
        assert np.array_equal(strict_out.data, vector_out.data)
        assert strict_metrics.latency_ns == pytest.approx(vector_metrics.latency_ns)
        assert strict_metrics.energy_j == pytest.approx(vector_metrics.energy_j)

    def test_vectorized_charges_modeled_bank_commands(self):
        """The vectorized path books the cost model's ACT/PRE counts.

        (The row-level path issues *more* commands than the nominal model —
        its concrete AAP realization parks intermediates in extra T rows —
        so the two paths agree on latency/energy, which are billed from the
        model, not on raw simulated command counts.)
        """
        engine = _engine(vectorized=True)
        a = engine.alloc_vector(900).fill_random(seed=5)
        b = engine.alloc_vector(900).fill_random(seed=6)
        before = {
            key: (bank.activations, bank.precharges)
            for key, bank in engine.device.iter_banks()
        }
        engine.execute("xor", a, b, functional=True)
        aaps, tras = engine.primitives_for("xor")
        chunks_per_bank = {}
        for placement in a.allocation.placements:
            chunks_per_bank[placement.bank_key] = (
                chunks_per_bank.get(placement.bank_key, 0) + 1
            )
        for key, bank in engine.device.iter_banks():
            chunks = chunks_per_bank.get(key, 0)
            acts, pres = before[key]
            assert bank.activations - acts == chunks * (2 * aaps + tras)
            assert bank.precharges - pres == chunks * (aaps + tras)

    def test_padding_bits_masked_on_both_paths(self):
        """Regression: complementing ops must not leak set padding bits."""
        for vectorized in (False, True):
            engine = _engine(vectorized=vectorized)
            a = engine.alloc_vector(13).fill_value(0)
            functional, _ = engine.execute("not", a, functional=True)
            analytical, _ = engine.execute("not", a, functional=False)
            assert np.array_equal(functional.data, analytical.data)
            # 13 bits -> bits 13..15 of byte 1 are padding and must be zero.
            assert functional.data[1] == 0x1F
            assert functional.data[2:].max(initial=0) == 0
            assert functional.count_ones() == 13


class TestVectorPoolAndAllocator:
    def test_pool_reuses_allocations(self):
        engine = _engine()
        pool = VectorPool(engine, capacity=4)
        first = pool.acquire(200)
        placements = [p.bank_row for p in first.allocation.placements]
        pool.release(first)
        second = pool.acquire(200)
        assert [p.bank_row for p in second.allocation.placements] == placements
        assert pool.hits == 1 and pool.misses == 1

    def test_pool_eviction_frees_rows(self):
        engine = _engine()
        pool = VectorPool(engine, capacity=2)
        vectors = [pool.acquire(100, bank_offset=i) for i in range(4)]
        used = engine.allocator.allocated_rows()
        for i, vector in enumerate(vectors):
            pool.release(vector, bank_offset=i)
        assert pool.evictions == 2
        assert engine.allocator.allocated_rows() == used - 2
        pool.drain()
        assert engine.allocator.allocated_rows() == used - 4

    def test_repeated_batches_do_not_leak_rows(self):
        rng = np.random.default_rng(1)
        scheduler = BatchScheduler(engine=_engine(), pool_capacity=8)
        column = _random_column(rng, 8, 300)
        watermark = None
        for round_index in range(5):
            scheduler.submit_scan(column, "between", 10, 240)
            scheduler.submit_scan(column, "equal", 77)
            scheduler.execute(functional=True)
            rows = scheduler.engine.allocator.allocated_rows()
            if watermark is None:
                watermark = rows
            assert rows <= watermark

    def test_allocator_free_list_reuses_rows(self):
        engine = _engine()
        allocator = engine.allocator
        first = allocator.allocate(4)
        second = allocator.allocate(4)
        used = allocator.allocated_rows()
        allocator.free(first)
        assert allocator.allocated_rows() == used - 4
        third = allocator.allocate(4)
        assert allocator.allocated_rows() == used
        # The freed (non-top) rows were actually recycled.
        assert {p.local_row for p in third.placements} == {
            p.local_row for p in first.placements
        }
        assert third.aligned_with(second)

    def test_allocator_bank_offset_rotates_start_bank(self):
        engine = _engine(banks=4)
        allocator = engine.allocator
        base = allocator.allocate(2, bank_offset=0)
        shifted = allocator.allocate(2, bank_offset=1)
        assert base.placements[0].bank_key != shifted.placements[0].bank_key
        assert base.placements[1].bank_key == shifted.placements[0].bank_key
        # Same offset => aligned; different offsets are generally not.
        assert allocator.allocate(2, bank_offset=1).aligned_with(shifted)


class TestQueryBatchApi:
    def test_scan_query_batch_matches_single_queries(self):
        rng = np.random.default_rng(2)
        engine = _engine(banks=4)
        query_engine = QueryEngine(ambit=engine)
        columns = [_random_column(rng, 8, 400) for _ in range(4)]
        ranges = [(column, 10, 150) for column in columns]
        batch = query_engine.range_count_query_batch(ranges, ScanBackend.AMBIT)
        serial_energy = 0.0
        for (column, low, high), result in zip(ranges, batch.results):
            single = query_engine.range_count_query(column, low, high, ScanBackend.AMBIT)
            assert result.matching_rows == single.matching_rows
            assert result.latency_ns == pytest.approx(single.latency_ns)
            assert result.energy_j == pytest.approx(single.energy_j)
            serial_energy += single.energy_j
        assert batch.energy_j == pytest.approx(serial_energy)
        assert batch.batching_speedup >= 1.0

    def test_cpu_backend_runs_serially(self):
        rng = np.random.default_rng(2)
        query_engine = QueryEngine(ambit=_engine())
        columns = [_random_column(rng, 6, 200) for _ in range(3)]
        batch = query_engine.scan_query_batch(
            [(c, "less_than", (20,)) for c in columns], ScanBackend.CPU
        )
        assert batch.latency_ns == pytest.approx(batch.serial_latency_ns)
        assert len(batch.results) == 3


class TestBatchMetrics:
    def test_combine_serial_sums_components(self):
        engine = _engine()
        a = engine.alloc_vector(300)
        _, m1 = engine.execute("and", a, engine.alloc_vector(300))
        _, m2 = engine.execute("not", a)
        combined = combine_serial("pair", [m1, m2])
        assert combined.latency_ns == pytest.approx(m1.latency_ns + m2.latency_ns)
        assert combined.energy_j == pytest.approx(m1.energy_j + m2.energy_j)
        assert combined.bytes_produced == m1.bytes_produced + m2.bytes_produced

    def test_batch_metrics_speedup_and_throughput(self):
        metrics = BatchMetrics(
            name="x",
            requests=4,
            latency_ns=500.0,
            serial_latency_ns=2000.0,
            energy_j=1.0,
            bytes_produced=1000,
        )
        assert metrics.batching_speedup == pytest.approx(4.0)
        assert metrics.throughput_bytes_per_s == pytest.approx(1000 / 500e-9)
        assert metrics.latency_s == pytest.approx(500e-9)
