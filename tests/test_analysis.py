"""Tests for repro.analysis (metrics and tables)."""

import math

import pytest

from repro.analysis.metrics import (
    OperationMetrics,
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    percentile,
    ratio,
    reduction_percent,
)
from repro.analysis.tables import ResultTable


class TestOperationMetrics:
    def test_throughput(self):
        metrics = OperationMetrics("op", latency_ns=1000.0, energy_j=1e-9, bytes_produced=8000)
        assert metrics.throughput_bytes_per_s == pytest.approx(8e9)
        assert metrics.throughput_gops64 == pytest.approx(1.0)

    def test_zero_latency_throughput_is_zero(self):
        metrics = OperationMetrics("op", latency_ns=0.0, energy_j=0.0, bytes_produced=100)
        assert metrics.throughput_bytes_per_s == 0.0

    def test_energy_per_byte(self):
        metrics = OperationMetrics("op", latency_ns=1.0, energy_j=2e-6, bytes_produced=1000)
        assert metrics.energy_per_byte_j == pytest.approx(2e-9)

    def test_speedup_and_energy_reduction(self):
        fast = OperationMetrics("fast", latency_ns=10.0, energy_j=1.0)
        slow = OperationMetrics("slow", latency_ns=100.0, energy_j=5.0)
        assert fast.speedup_over(slow) == pytest.approx(10.0)
        assert fast.energy_reduction_over(slow) == pytest.approx(5.0)

    def test_speedup_with_zero_latency_rejected(self):
        bad = OperationMetrics("bad", latency_ns=0.0, energy_j=0.0)
        other = OperationMetrics("other", latency_ns=1.0, energy_j=1.0)
        with pytest.raises(ValueError):
            bad.speedup_over(other)


class TestSummaryStatistics:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_ratio_and_reduction(self):
        assert ratio(10.0, 2.0) == pytest.approx(5.0)
        assert reduction_percent(10.0, 2.0) == pytest.approx(80.0)
        with pytest.raises(ValueError):
            ratio(1.0, 0.0)
        with pytest.raises(ValueError):
            reduction_percent(0.0, 1.0)

    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == pytest.approx(1.0)
        assert percentile(values, 100) == pytest.approx(4.0)
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([], 50) is None
        with pytest.raises(ValueError):
            percentile(values, 150)

    def test_geometric_mean_matches_log_definition(self):
        values = [3.0, 7.0, 11.0, 13.0]
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert geometric_mean(values) == pytest.approx(expected)


class TestResultTable:
    def test_add_row_and_render(self):
        table = ResultTable("Demo", ["name", "value"])
        table.add_row("a", 1.5)
        table.add_row("b", 2)
        text = table.render()
        assert "Demo" in text
        assert "name" in text
        assert "1.5" in text

    def test_add_row_wrong_arity_rejected(self):
        table = ResultTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_accessor(self):
        table = ResultTable("Demo", ["name", "value"])
        table.add_row("x", 1)
        table.add_row("y", 2)
        assert table.column("value") == [1, 2]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_as_dicts(self):
        table = ResultTable("Demo", ["name", "value"])
        table.add_row("x", 1)
        assert table.as_dicts() == [{"name": "x", "value": 1}]

    def test_float_formatting(self):
        table = ResultTable("Demo", ["v"], float_format="{:.1f}")
        table.add_row(3.14159)
        assert "3.1" in table.render()
