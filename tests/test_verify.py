"""Tests for the static verification layer (``repro.verify`` + tools).

Three checkers, each tested from both sides:

* **Plan linter** — real lowered conjunction chains pass; hand-built
  known-bad chains (cycle, double-produce, width mismatch, stale cost
  model, dropped predicate, broken scatter) are each rejected with their
  typed :class:`~repro.verify.errors.PlanVerifyError` subclass.
* **Schedule race detector** — honest lane schedules pass (pipelined and
  barrier, service and cluster, with ``sanitize=True`` live on every
  dispatch); tampered interval logs and accounting are each rejected
  with their typed :class:`~repro.verify.errors.ScheduleVerifyError`
  subclass, and the non-raising audit collects every finding.
* **Repo invariant lint / bench schema** — the committed tree is clean,
  a deliberately introduced mutable-default regression fails the lint
  (exit code 1, the CI gate), waivers suppress, and malformed
  ``BENCH_*.json`` payloads are rejected by the schema validator.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.ambit.bitvector import BulkBitVector
from repro.analysis import audit_cluster, audit_executor, render_audit
from repro.api.plans import lower_conjunction_steps
from repro.cluster import ClusterFrontend, ShardRouter
from repro.database.bitmap_index import BitmapIndex, BitmapPlan
from repro.database.bitweaving import BitWeavingColumn
from repro.database.tables import ColumnTable
from repro.service import (
    ArrivalEvent,
    BatchExecutor,
    BitmapConjunctionRequest,
    LaneSchedule,
    ScanRequest,
    ServiceFrontend,
)
from repro.service.lanes import LanePlacement
from repro.verify import (
    AccountingError,
    CausalityError,
    ChainCycleError,
    CostModelMismatchError,
    DanglingOperandError,
    LaneHazardError,
    ScatterCoverageError,
    VerifyError,
    WidthMismatchError,
    check_scatter_coverage,
    check_schedule,
    lint_chain,
    lint_lowered_conjunction,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_PATH = REPO_ROOT / "tools" / "lint_invariants.py"
VALIDATE_PATH = REPO_ROOT / "tools" / "validate_bench.py"


def _load_tool(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    # Registered before exec: dataclass processing resolves the module's
    # (PEP 563) annotations through sys.modules.
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


lint_invariants = _load_tool(LINT_PATH)
validate_bench = _load_tool(VALIDATE_PATH)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def table() -> ColumnTable:
    rng = np.random.default_rng(7)
    table = ColumnTable("t", 300)
    table.add_column("region", rng.integers(0, 5, size=300))
    table.add_column("status", rng.integers(0, 3, size=300))
    table.add_column("tier", rng.integers(0, 6, size=300))
    return table


@pytest.fixture
def index(table: ColumnTable) -> BitmapIndex:
    return BitmapIndex(table, ["region", "status", "tier"])


PREDICATES = (("region", (1, 2)), ("status", (0, 1)), ("tier", (3,)))


def _lowered(index: BitmapIndex, predicates=PREDICATES, row_size_bytes: int = 8192):
    return lower_conjunction_steps(index, predicates, row_size_bytes=row_size_bytes)


# ----------------------------------------------------------------------
# Plan linter: clean chains pass
# ----------------------------------------------------------------------
class TestPlanLintClean:
    def test_real_lowered_chain_passes(self, index):
        steps, result, plan = _lowered(index)
        report = lint_lowered_conjunction(
            PREDICATES, steps, result, plan, num_rows=index.num_rows
        )
        assert report.steps == len(steps) == plan.total_operations
        assert report.op_counts == {"or": 2, "and": 2}
        # Sources: one bitmap plane per predicate value.
        assert report.sources == sum(len(values) for _c, values in PREDICATES)

    def test_zero_step_identity_chain_passes(self, index):
        predicates = (("tier", (3,)),)
        steps, result, plan = _lowered(index, predicates)
        assert steps == []
        report = lint_lowered_conjunction(
            predicates, steps, result, plan, num_rows=index.num_rows
        )
        assert report.steps == 0

    def test_row_size_pinning(self, index):
        steps, result, plan = _lowered(index, row_size_bytes=64)
        lint_chain(steps, result, plan, num_rows=index.num_rows, row_size_bytes=64)
        with pytest.raises(WidthMismatchError):
            lint_chain(steps, result, plan, num_rows=index.num_rows, row_size_bytes=8192)


# ----------------------------------------------------------------------
# Plan linter: known-bad chains are rejected with typed errors
# ----------------------------------------------------------------------
class TestPlanLintKnownBad:
    def test_cyclic_chain_rejected(self, index):
        steps, result, plan = _lowered(index)
        # Forward reference: first step consumes the last step's output.
        op, _a, b, out = steps[0]
        steps = [(op, steps[-1][3], b, out)] + steps[1:]
        with pytest.raises(ChainCycleError) as excinfo:
            lint_chain(steps, result, plan, num_rows=index.num_rows)
        assert excinfo.value.rule == "chain-cycle"
        assert excinfo.value.details["step"] == 0

    def test_self_consuming_step_rejected(self, index):
        steps, result, plan = _lowered(index)
        op, a, _b, out = steps[1]
        steps = steps[:1] + [(op, a, out, out)] + steps[2:]
        with pytest.raises(ChainCycleError):
            lint_chain(steps, result, plan, num_rows=index.num_rows)

    def test_double_produced_output_rejected(self, index):
        steps, result, plan = _lowered(index)
        op, a, b, _out = steps[1]
        steps = steps[:1] + [(op, a, b, steps[0][3])] + steps[2:]
        with pytest.raises(DanglingOperandError):
            lint_chain(steps, result, plan, num_rows=index.num_rows)

    def test_width_mismatch_rejected(self, index):
        steps, result, plan = _lowered(index)
        op, a, _b, out = steps[0]
        steps = [(op, a, BulkBitVector(index.num_rows + 64), out)] + steps[1:]
        with pytest.raises(WidthMismatchError) as excinfo:
            lint_chain(steps, result, plan, num_rows=index.num_rows)
        assert excinfo.value.rule == "width-mismatch"

    def test_stale_cost_model_rejected(self, index):
        steps, result, plan = _lowered(index)
        stale = BitmapPlan(
            operations=plan.operations + [("or", 1)], result_bits=plan.result_bits
        )
        with pytest.raises(CostModelMismatchError):
            lint_chain(steps, result, stale, num_rows=index.num_rows)

    def test_op_breakdown_mismatch_rejected(self, index):
        steps, result, plan = _lowered(index)
        # Same step count, different breakdown: one OR relabeled as AND.
        swapped = BitmapPlan(operations=[("or", 1), ("and", 3)], result_bits=plan.result_bits)
        assert swapped.total_operations == plan.total_operations
        with pytest.raises(CostModelMismatchError):
            lint_chain(steps, result, swapped, num_rows=index.num_rows)

    def test_dropped_predicate_rejected(self, index):
        # A lowering that silently dropped a predicate, paired with the
        # matching stale plan, passes lint_chain — the conjunction-level
        # check against the *predicate set* is what catches it.
        short = PREDICATES[:2]
        steps, result, plan = _lowered(index, short)
        with pytest.raises(CostModelMismatchError):
            lint_lowered_conjunction(PREDICATES, steps, result, plan, num_rows=index.num_rows)

    def test_wrong_result_vector_rejected(self, index):
        steps, _result, plan = _lowered(index)
        with pytest.raises(DanglingOperandError):
            lint_chain(steps, steps[0][3], plan, num_rows=index.num_rows)

    def test_errors_are_typed_verify_errors(self, index):
        steps, result, plan = _lowered(index)
        stale = BitmapPlan(operations=[], result_bits=plan.result_bits)
        with pytest.raises(VerifyError):
            lint_chain(steps, result, stale, num_rows=index.num_rows)


# ----------------------------------------------------------------------
# Scatter coverage
# ----------------------------------------------------------------------
class TestScatterCoverage:
    def test_exact_cover_passes(self):
        check_scatter_coverage(
            PREDICATES, [(0, PREDICATES[:1]), (1, PREDICATES[1:])]
        )

    def test_dropped_predicate_rejected(self):
        with pytest.raises(ScatterCoverageError) as excinfo:
            check_scatter_coverage(PREDICATES, [(0, PREDICATES[:2])])
        assert excinfo.value.details["missing"]

    def test_duplicated_predicate_rejected(self):
        with pytest.raises(ScatterCoverageError) as excinfo:
            check_scatter_coverage(
                PREDICATES, [(0, PREDICATES), (1, PREDICATES[:1])]
            )
        assert excinfo.value.details["duplicated"]

    def test_empty_part_rejected(self):
        with pytest.raises(ScatterCoverageError):
            check_scatter_coverage(PREDICATES, [(0, PREDICATES), (1, ())])


# ----------------------------------------------------------------------
# Schedule race detector: honest schedules pass
# ----------------------------------------------------------------------
def _honest_schedule() -> LaneSchedule:
    lanes = LaneSchedule(["a", "b"])
    lanes.open_batch()
    lanes.place(["a"], 100.0, release_ns=0.0)
    lanes.place(["b"], 60.0, release_ns=0.0)
    lanes.place(["a", "b"], 40.0, release_ns=0.0)
    lanes.open_batch()
    lanes.place(["b"], 30.0, release_ns=50.0)
    return lanes


class TestScheduleCheckClean:
    def test_honest_schedule_passes(self):
        report = check_schedule(_honest_schedule())
        assert report.ok
        assert report.placements == 4
        assert report.batches == 2
        assert report.lanes == 2

    def test_empty_schedule_passes(self):
        assert check_schedule(LaneSchedule(["a"])).ok

    def test_host_lane_and_multi_lane_requests_pass(self):
        lanes = LaneSchedule(["a", "b", "c"])
        lanes.open_batch()
        lanes.place(["host"], 10.0)
        lanes.place(["a", "b", "c"], 25.0)
        lanes.place(["host"], 5.0)
        assert check_schedule(lanes).ok


# ----------------------------------------------------------------------
# Schedule race detector: tampered logs/accounting are rejected
# ----------------------------------------------------------------------
def _tamper(lanes: LaneSchedule, position: int, **changes) -> LaneSchedule:
    lanes.log[position] = replace(lanes.log[position], **changes)
    return lanes


class TestScheduleCheckKnownBad:
    def test_overlapping_lane_intervals_rejected(self):
        lanes = _honest_schedule()
        # Pull the second lane-a placement into the first one's interval.
        _tamper(lanes, 2, start_ns=50.0, finish_ns=90.0)
        with pytest.raises(LaneHazardError) as excinfo:
            check_schedule(lanes)
        assert excinfo.value.rule == "lane-hazard"

    def test_start_before_release_rejected(self):
        lanes = LaneSchedule(["a"])
        lanes.open_batch()
        lanes.place(["a"], 10.0, release_ns=100.0)
        _tamper(lanes, 0, release_ns=200.0)
        with pytest.raises(CausalityError):
            check_schedule(lanes)

    def test_finish_latency_disagreement_rejected(self):
        lanes = LaneSchedule(["a"])
        lanes.open_batch()
        lanes.place(["a"], 10.0)
        _tamper(lanes, 0, finish_ns=25.0)
        with pytest.raises(CausalityError):
            check_schedule(lanes)

    def test_negative_latency_rejected(self):
        lanes = LaneSchedule(["a"])
        lanes.open_batch()
        lanes.place(["a"], 10.0)
        _tamper(lanes, 0, latency_ns=-10.0)
        with pytest.raises(CausalityError):
            check_schedule(lanes)

    def test_schedule_drift_rejected(self):
        lanes = _honest_schedule()
        # Unforced idle: the log claims a later start than the replay.
        last = lanes.log[-1]
        _tamper(lanes, 3, start_ns=last.start_ns + 500.0, finish_ns=last.finish_ns + 500.0)
        with pytest.raises(CausalityError) as excinfo:
            check_schedule(lanes)
        assert "drift" in str(excinfo.value)

    def test_busy_union_tamper_rejected(self):
        lanes = _honest_schedule()
        lanes.busy_union_ns += 7.0
        with pytest.raises(AccountingError):
            check_schedule(lanes)

    def test_per_lane_busy_tamper_rejected(self):
        lanes = _honest_schedule()
        lanes.busy["a"] += 3.0
        with pytest.raises(AccountingError) as excinfo:
            check_schedule(lanes)
        assert excinfo.value.details["lane"] == "a"

    def test_request_count_tamper_rejected(self):
        lanes = _honest_schedule()
        lanes.requests += 1
        with pytest.raises(AccountingError):
            check_schedule(lanes)

    def test_overlap_tamper_rejected_on_pipelined_schedule(self):
        lanes = _honest_schedule()
        lanes.batches = 2  # marks the schedule as persistent/pipelined
        lanes.cross_batch_overlap_ns = 123.0
        with pytest.raises(AccountingError):
            check_schedule(lanes)

    def test_collect_mode_gathers_all_findings(self):
        lanes = _honest_schedule()
        last = lanes.log[-1]
        _tamper(lanes, 3, start_ns=last.start_ns + 500.0, finish_ns=last.finish_ns + 500.0)
        report = check_schedule(lanes, raise_on_error=False)
        assert not report.ok
        rules = {v.rule for v in report.violations}
        # Drift, the barrier completion bound, and the horizon accounting
        # all disagree with the tampered entry.
        assert "causality" in rules and "accounting" in rules
        assert any("barrier bound" in str(v) for v in report.violations)

    def test_incremental_checker_flags_only_new_batches(self):
        from repro.verify import ScheduleSanitizer

        lanes = LaneSchedule(["a"])
        sanitizer = ScheduleSanitizer()
        lanes.open_batch()
        lanes.place(["a"], 10.0)
        assert sanitizer.check(lanes).ok
        lanes.open_batch()
        lanes.place(["a"], 10.0)
        lanes.log.append(
            LanePlacement(
                lanes=("a",), latency_ns=5.0, release_ns=0.0,
                start_ns=2.0, finish_ns=7.0, batch_index=2,
            )
        )
        with pytest.raises(LaneHazardError):
            sanitizer.check(lanes)


# ----------------------------------------------------------------------
# sanitize=True live on real workloads (service + cluster, both modes)
# ----------------------------------------------------------------------
def _workload(table: ColumnTable, index: BitmapIndex):
    column = BitWeavingColumn.from_table(table, "tier")
    events = []
    t = 0.0
    for i in range(10):
        events.append(
            ArrivalEvent(
                arrival_ns=t,
                request=ScanRequest(column=column, kind="less_equal", constants=(3,)),
            )
        )
        events.append(
            ArrivalEvent(
                arrival_ns=t,
                request=BitmapConjunctionRequest(index=index, predicates=PREDICATES),
            )
        )
        t += 400.0
    return events


class TestSanitizeKnob:
    @pytest.mark.parametrize("pipeline", [True, False])
    def test_service_tier_clean_under_sanitize(self, table, index, pipeline):
        executor = BatchExecutor(pipeline=pipeline, sanitize=True)
        frontend = ServiceFrontend(executor=executor)
        result = frontend.run(_workload(table, index))
        assert len(result.completed()) == 20
        # Same workload without the sanitizer: identical results (the
        # checker is read-only).
        baseline = ServiceFrontend(executor=BatchExecutor(pipeline=pipeline))
        expected = baseline.run(_workload(table, index))
        for got, want in zip(result.completed(), expected.completed()):
            assert np.array_equal(got.value, want.value)

    @pytest.mark.parametrize("pipeline", [True, False])
    def test_cluster_tier_clean_under_sanitize(self, table, index, pipeline):
        cluster = ClusterFrontend(
            num_shards=3, router=ShardRouter(3), pipeline=pipeline, sanitize=True
        )
        result = cluster.run(_workload(table, index))
        assert len(result.completed()) == 20
        for record in result.completed():
            if isinstance(record.request, BitmapConjunctionRequest):
                expected, _ = index.evaluate_conjunction(list(record.request.predicates))
                assert np.array_equal(record.value, expected)

    def test_audit_report_over_sanitized_run(self, table, index):
        executor = BatchExecutor(pipeline=True, sanitize=True)
        frontend = ServiceFrontend(executor=executor)
        frontend.run(_workload(table, index))
        audit = audit_executor(executor)
        assert audit.ok and audit.report.placements == executor.lanes.requests
        rendered = render_audit([audit])
        assert "ok" in rendered and "executor" in rendered

    def test_audit_report_over_cluster(self, table, index):
        cluster = ClusterFrontend(num_shards=2, sanitize=True)
        cluster.run(_workload(table, index))
        audits = audit_cluster(cluster)
        assert len(audits) == 2 and all(a.ok for a in audits)

    def test_audit_collects_violations_without_raising(self):
        lanes = _honest_schedule()
        lanes.busy_union_ns += 11.0
        from repro.analysis import audit_schedule

        audit = audit_schedule(lanes, name="tampered")
        assert not audit.ok
        assert "violation" in render_audit([audit])


# ----------------------------------------------------------------------
# Repo invariant lint (tools/lint_invariants.py)
# ----------------------------------------------------------------------
class TestInvariantLint:
    def test_committed_tree_is_clean(self):
        findings = lint_invariants.collect_findings([REPO_ROOT / "src" / "repro"])
        assert findings == []

    def test_mutable_default_flagged(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Config:\n"
            "    items: list = []\n"
        )
        findings = lint_invariants.lint_source(source, "bad.py")
        assert [f.rule for f in findings] == ["mutable-default"]

    def test_shared_call_default_flagged(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Config:\n"
            "    stats: dict = dict()\n"
        )
        assert [f.rule for f in lint_invariants.lint_source(source, "bad.py")] == [
            "mutable-default"
        ]

    def test_field_default_factory_not_flagged(self):
        source = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Config:\n"
            "    items: list = field(default_factory=list)\n"
            "    count: int = 0\n"
        )
        assert lint_invariants.lint_source(source, "good.py") == []

    def test_field_mutable_default_flagged(self):
        source = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Config:\n"
            "    items: list = field(default=[])\n"
        )
        assert [f.rule for f in lint_invariants.lint_source(source, "bad.py")] == [
            "mutable-default"
        ]

    def test_wall_clock_imports_flagged(self):
        source = "import time\nfrom random import random\n"
        rules = [f.rule for f in lint_invariants.lint_source(source, "bad.py")]
        assert rules == ["wall-clock", "wall-clock"]

    def test_numpy_random_not_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert lint_invariants.lint_source(source, "good.py") == []

    def test_frozen_mutation_flagged(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Point:\n"
            "    x: int = 0\n"
            "    def move(self) -> None:\n"
            "        self.x = 1\n"
        )
        assert [f.rule for f in lint_invariants.lint_source(source, "bad.py")] == [
            "frozen-mutation"
        ]

    def test_object_setattr_idiom_not_flagged(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Point:\n"
            "    x: int = 0\n"
            "    def __post_init__(self) -> None:\n"
            "        object.__setattr__(self, 'x', 1)\n"
        )
        assert lint_invariants.lint_source(source, "good.py") == []

    def test_export_drift_flagged(self):
        source = "__all__ = ['missing', 'present', 'present']\npresent = 1\n"
        rules = sorted(f.rule for f in lint_invariants.lint_source(source, "bad.py"))
        assert rules == ["export-drift", "export-drift"]

    def test_waiver_suppresses(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Config:\n"
            "    items: list = []  # lint: allow[mutable-default]\n"
        )
        assert lint_invariants.lint_source(source, "waived.py") == []

    def test_cli_gate_fails_on_mutable_default_regression(self, tmp_path):
        # The acceptance criterion: a deliberately introduced
        # mutable-default regression fails the CI lint gate (exit 1) —
        # demonstrated here against a temp file, never committed.
        bad = tmp_path / "regression.py"
        bad.write_text(
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Runtime:\n"
            "    queues: dict = {}\n"
        )
        proc = subprocess.run(
            [sys.executable, str(LINT_PATH), str(bad)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "mutable-default" in proc.stdout

    def test_cli_clean_tree_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, str(LINT_PATH), str(REPO_ROOT / "src" / "repro")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# BENCH_*.json schema validation (tools/validate_bench.py)
# ----------------------------------------------------------------------
def _pipeline_payload() -> dict:
    mode = {
        "completed": 10, "rejected": 0, "batches": 2, "throughput_gb_s": 1.5,
        "sojourn_p50_us": 3.0, "sojourn_p99_us": 9.0, "makespan_ms": 0.5,
        "busy_ms": 0.4, "bank_idle_fraction": 0.2, "cross_batch_overlap_ms": 0.1,
    }
    return {
        "barrier": dict(mode),
        "pipelined": dict(mode),
        "pipelined_vs_barrier_throughput": 1.4,
    }


class TestBenchValidation:
    def test_valid_pipeline_payload_passes(self, tmp_path):
        path = tmp_path / "BENCH_pipeline.json"
        path.write_text(json.dumps(_pipeline_payload()))
        assert validate_bench.validate_file(path) == []

    def test_missing_field_rejected(self, tmp_path):
        payload = _pipeline_payload()
        del payload["pipelined"]["throughput_gb_s"]
        path = tmp_path / "BENCH_pipeline.json"
        path.write_text(json.dumps(payload))
        errors = validate_bench.validate_file(path)
        assert any("throughput_gb_s" in e for e in errors)

    def test_nan_rejected(self, tmp_path):
        payload = _pipeline_payload()
        payload["pipelined"]["busy_ms"] = float("nan")
        path = tmp_path / "BENCH_pipeline.json"
        path.write_text(json.dumps(payload))  # serializes as bare NaN
        errors = validate_bench.validate_file(path)
        assert errors and "non-finite" in errors[0]

    def test_wrong_type_rejected(self, tmp_path):
        payload = _pipeline_payload()
        payload["barrier"]["completed"] = "10"
        path = tmp_path / "BENCH_pipeline.json"
        path.write_text(json.dumps(payload))
        errors = validate_bench.validate_file(path)
        assert any("expected integer" in e for e in errors)

    def test_unknown_benchmark_gets_generic_sweep(self, tmp_path):
        path = tmp_path / "BENCH_novel.json"
        path.write_text('{"metric": 1.0}')
        assert validate_bench.validate_file(path) == []
        path.write_text('{"metric": Infinity}')
        assert validate_bench.validate_file(path)

    def test_emitted_benchmark_files_validate(self):
        # The repo-root BENCH files written by actual benchmark runs (when
        # present) must satisfy their schemas.
        emitted = sorted(REPO_ROOT.glob("BENCH_*.json"))
        for path in emitted:
            assert validate_bench.validate_file(path) == [], path
