"""Tests for repro.dram.timing."""

import pytest

from repro.dram.timing import DramTimingParameters


class TestDerivedLatencies:
    def test_row_cycle_is_ras_plus_rp(self):
        timing = DramTimingParameters.ddr3_1600()
        assert timing.t_rc_ns == pytest.approx(timing.t_ras_ns + timing.t_rp_ns)

    def test_burst_time_matches_data_rate(self):
        timing = DramTimingParameters.ddr3_1600()
        # BL8 at 1600 MT/s should take 5 ns.
        assert timing.burst_time_ns == pytest.approx(5.0)

    def test_latency_ordering_hit_empty_miss(self):
        timing = DramTimingParameters.ddr3_1600()
        assert (
            timing.row_hit_read_latency_ns
            < timing.row_empty_read_latency_ns
            < timing.row_miss_read_latency_ns
        )

    def test_channel_bandwidth_ddr3_1600(self):
        timing = DramTimingParameters.ddr3_1600()
        assert timing.channel_bandwidth_bytes_per_s(64) == pytest.approx(12.8e9)

    def test_channel_bandwidth_scales_with_width(self):
        timing = DramTimingParameters.ddr3_1600()
        assert timing.channel_bandwidth_bytes_per_s(32) == pytest.approx(
            timing.channel_bandwidth_bytes_per_s(64) / 2
        )


class TestPimPrimitives:
    def test_aap_is_longer_than_one_row_cycle(self):
        timing = DramTimingParameters.ddr3_1600()
        assert timing.aap_ns > timing.t_rc_ns

    def test_aap_is_two_ras_plus_rp(self):
        timing = DramTimingParameters.ddr3_1600()
        assert timing.aap_ns == pytest.approx(2 * timing.t_ras_ns + timing.t_rp_ns)

    def test_tra_matches_aap_envelope(self):
        timing = DramTimingParameters.ddr3_1600()
        assert timing.tra_ns == pytest.approx(timing.aap_ns)

    def test_ap_is_row_cycle(self):
        timing = DramTimingParameters.ddr3_1600()
        assert timing.ap_ns == pytest.approx(timing.t_rc_ns)


class TestPresetsAndValidation:
    def test_ddr4_is_faster_than_ddr3_on_the_channel(self):
        ddr3 = DramTimingParameters.ddr3_1600()
        ddr4 = DramTimingParameters.ddr4_2400()
        assert ddr4.channel_bandwidth_bytes_per_s() > ddr3.channel_bandwidth_bytes_per_s()

    def test_hmc_internal_preset_has_short_bursts(self):
        assert DramTimingParameters.hmc_internal().burst_length == 4

    @pytest.mark.parametrize("field", ["tck_ns", "t_rcd_ns", "t_ras_ns", "t_rp_ns"])
    def test_rejects_non_positive_timing(self, field):
        with pytest.raises(ValueError):
            DramTimingParameters(**{field: 0.0})

    def test_rejects_non_positive_burst_length(self):
        with pytest.raises(ValueError):
            DramTimingParameters(burst_length=0)
