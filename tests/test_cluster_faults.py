"""Tests for fault injection, replica failover, and elastic control.

The load-bearing acceptance property: under any fault schedule with
replication factor >= 2 (and no more than rf-1 concurrently-dead
shards), the cluster's results are bit-exact with a healthy fixed-pool
run, and no request is lost or double-executed — every offered request
terminates exactly once, as completed or as a typed rejection.  Around
it: the FaultPlan schedule/trigger semantics, degraded-mode typed
outcomes (ShardUnavailable), drain/retire conservation, the obs-driven
ElasticController's three actuators, the deadline-aware retry budget,
the failover-reoffer lint, and the counter-vs-metrics audit.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import PimSession, RequestFailed, RequestRejected, ShardUnavailable
from repro.cluster import (
    ClusterFrontend,
    ControllerPolicy,
    ElasticController,
    FaultEvent,
    FaultPlan,
    FaultTrigger,
    PlacementUnavailable,
    ShardRouter,
    kill_revive_schedule,
)
from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.service import (
    BatchPolicy,
    BitmapConjunctionRequest,
    ScanRequest,
    poisson_schedule,
    trace_schedule,
)
from repro.service.client import BackoffPolicy, RetryClient
from repro.service.frontend import ArrivalEvent
from repro.verify import FailoverError, check_failover_reoffer


def _device(banks: int = 4, rows_per_subarray: int = 32) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=rows_per_subarray,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine_factory(banks: int = 4):
    return lambda: AmbitEngine(
        _device(banks), AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _cluster(num_shards: int, **kwargs) -> ClusterFrontend:
    kwargs.setdefault("engine_factory", _engine_factory())
    kwargs.setdefault("policy", BatchPolicy(max_batch=3))
    return ClusterFrontend(num_shards=num_shards, **kwargs)


def _bitmap_index(rng, rows: int = 150) -> BitmapIndex:
    table = ColumnTable("t", rows)
    table.add_column("region", rng.integers(0, 8, size=rows), cardinality=8)
    table.add_column("status", rng.integers(0, 4, size=rows), cardinality=4)
    table.add_column("tier", rng.integers(0, 3, size=rows), cardinality=3)
    return BitmapIndex(table, ["region", "status", "tier"])


def _conjunctions(rng, index: BitmapIndex, count: int):
    """A burst of conjunction requests touching every indexed column."""
    requests = []
    for _ in range(count):
        predicates = []
        for column, cardinality in (("region", 8), ("status", 4), ("tier", 3)):
            values = tuple(
                sorted(set(int(v) for v in rng.integers(0, cardinality, size=2)))
            )
            predicates.append((column, values))
        requests.append(
            BitmapConjunctionRequest(index=index, predicates=tuple(predicates))
        )
    return requests


class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at_ns=0.0, action="explode", shard_id=0)
        with pytest.raises(ValueError):
            FaultEvent(at_ns=-1.0, action="kill", shard_id=0)
        with pytest.raises(ValueError):
            FaultEvent(at_ns=0.0, action="kill")  # kill needs a victim
        FaultEvent(at_ns=0.0, action="join")  # join does not

    def test_trigger_validation_and_arming(self):
        with pytest.raises(ValueError):
            FaultTrigger(action="explode", predicate=lambda c, t: True, shard_id=0)
        trigger = FaultTrigger(action="kill", predicate=lambda c, t: True, shard_id=0)
        assert trigger.armed
        trigger.fired = 1
        assert not trigger.armed
        repeating = FaultTrigger(
            action="kill", predicate=lambda c, t: True, shard_id=0, once=False, fired=3
        )
        assert repeating.armed

    def test_schedule_orders_by_time_then_insertion(self):
        plan = FaultPlan(
            events=[
                FaultEvent(at_ns=500.0, action="revive", shard_id=1),
                FaultEvent(at_ns=100.0, action="kill", shard_id=1),
                FaultEvent(at_ns=500.0, action="kill", shard_id=0),
            ]
        )
        assert plan.next_fire_ns() == 100.0
        assert [(e.at_ns, e.action) for e in plan.pending] == [
            (100.0, "kill"),
            (500.0, "revive"),
            (500.0, "kill"),
        ]

    def test_kill_revive_schedule_helper(self):
        plan = kill_revive_schedule([(0, 100.0, 200.0), (1, 50.0, None)])
        assert [(e.at_ns, e.action, e.shard_id) for e in plan.pending] == [
            (50.0, "kill", 1),
            (100.0, "kill", 0),
            (200.0, "revive", 0),
        ]
        with pytest.raises(ValueError):
            kill_revive_schedule([(0, 200.0, 100.0)])

    def test_fire_due_applies_and_logs(self):
        cluster = _cluster(2, router=ShardRouter(2, replication_factor=2))
        plan = kill_revive_schedule([(1, 100.0, 200.0)])
        cluster.faults = plan
        assert plan.fire_due(cluster, 50.0) == 0
        assert plan.fire_due(cluster, 100.0) == 1
        assert not cluster.router.is_alive(1)
        # Killing the dead shard again is a logged no-op.
        plan2 = FaultPlan(events=[FaultEvent(at_ns=150.0, action="kill", shard_id=1)])
        plan2.fire_due(cluster, 150.0)
        assert plan2.log[0].applied is False
        assert plan.fire_due(cluster, 250.0) == 1
        assert cluster.router.is_alive(1)
        assert [(e.action, e.applied, e.source) for e in plan.log] == [
            ("kill", True, "event"),
            ("revive", True, "event"),
        ]

    def test_trigger_fires_on_cluster_state(self):
        cluster = _cluster(2, router=ShardRouter(2, replication_factor=2))
        plan = FaultPlan(
            triggers=[
                FaultTrigger(
                    action="kill",
                    predicate=lambda c, now: now >= 300.0,
                    shard_id=0,
                )
            ]
        )
        cluster.faults = plan
        assert plan.poll(cluster, 100.0) == 0
        assert plan.poll(cluster, 300.0) == 1
        assert not cluster.router.is_alive(0)
        assert plan.poll(cluster, 400.0) == 0  # once=True disarms
        assert plan.log[0].source == "trigger"


class TestFailoverBitExactness:
    @settings(max_examples=8, deadline=None)
    @given(
        num_shards=st.sampled_from([2, 3, 4]),
        pipeline=st.booleans(),
        kill_ns=st.sampled_from([300.0, 1500.0, 4000.0]),
        revive=st.booleans(),
        victim_offset=st.integers(0, 3),
        seed=st.integers(0, 2**16),
    )
    def test_results_bit_exact_under_fault_schedule(
        self, num_shards, pipeline, kill_ns, revive, victim_offset, seed
    ):
        """Acceptance: any kill/revive schedule with rf=2 and one dead
        shard at a time leaves every request completed, bit-exact with
        the healthy fixed-pool run — nothing lost, nothing doubled."""
        rng = np.random.default_rng(seed)
        index = _bitmap_index(rng)
        requests = _conjunctions(rng, index, count=12)
        events = poisson_schedule(requests, rate_per_s=2e6, seed=seed)

        healthy = _cluster(
            num_shards,
            router=ShardRouter(num_shards, replication_factor=2),
            pipeline=pipeline,
        )
        healthy_result = healthy.run(
            poisson_schedule(requests, rate_per_s=2e6, seed=seed)
        )

        victim = victim_offset % num_shards
        plan = kill_revive_schedule(
            [(victim, kill_ns, kill_ns + 3000.0 if revive else None)]
        )
        faulted = _cluster(
            num_shards,
            router=ShardRouter(num_shards, replication_factor=2),
            pipeline=pipeline,
            faults=plan,
        )
        result = faulted.run(events)

        # Conservation: every request terminates exactly once.
        assert result.metrics.offered == len(requests)
        assert result.metrics.completed + result.metrics.rejected == len(requests)
        assert result.metrics.rejected == 0  # rf=2 covers one dead shard
        assert sorted(r.seq for r in result.completed()) == list(range(len(requests)))

        # Bit-exactness vs the healthy run and vs direct evaluation.
        healthy_by_seq = {r.seq: r for r in healthy_result.records}
        for record in result.records:
            expected, _ = index.evaluate_conjunction(list(record.request.predicates))
            assert np.array_equal(record.value, expected)
            assert np.array_equal(record.value, healthy_by_seq[record.seq].value)

        # The schedule was actually exercised when it was due in-window.
        fired = [entry for entry in plan.log if entry.action == "kill"]
        if kill_ns <= result.metrics.makespan_ns:
            assert fired and fired[0].applied
            assert result.metrics.shard_failures == 1

    def test_mid_burst_kill_migrates_queued_parts(self):
        """A kill landing mid-burst re-offers queued parts to surviving
        replicas: failovers are visible, nothing is lost."""
        rng = np.random.default_rng(42)
        index = _bitmap_index(rng)
        requests = _conjunctions(rng, index, count=24)
        plan = kill_revive_schedule([(1, 600.0, None)])
        cluster = _cluster(
            4,
            router=ShardRouter(4, replication_factor=2),
            faults=plan,
            sanitize=True,  # every re-offer certified by the failover lint
        )
        result = cluster.run(poisson_schedule(requests, rate_per_s=8e6, seed=42))
        assert result.metrics.shard_failures == 1
        assert result.metrics.completed == len(requests)
        assert result.metrics.rejected == 0
        assert result.metrics.failovers > 0
        assert result.metrics.failover_failures == 0
        for record in result.records:
            expected, _ = index.evaluate_conjunction(list(record.request.predicates))
            assert np.array_equal(record.value, expected)
        # No migrated part landed back on the dead shard.
        for record in result.records:
            if record.failovers:
                assert all(s != 1 for s in record.shard_ids)
                assert record.migrated_parts  # originals kept for audit

    def test_revived_shard_serves_again(self):
        rng = np.random.default_rng(7)
        column = BitWeavingColumn(rng.integers(0, 64, size=200), 6)
        plan = kill_revive_schedule([(0, 100.0, 5000.0)])
        cluster = _cluster(
            2, router=ShardRouter(2, replication_factor=1), faults=plan
        )
        home = cluster.router.replicas(column)[0]
        # Round-robin object placement puts the first column on shard 0.
        assert home == 0
        cluster.advance_to(200.0)  # kill fires; shard 0 is down
        assert not cluster.router.is_alive(0)
        cluster.advance_to(6000.0)  # revival fires
        assert cluster.router.is_alive(0)
        record = cluster.offer(
            ScanRequest(column=column, kind="less_than", constants=(10,)),
            arrival_ns=6000.0,
        )
        cluster.drain()
        assert record.completed
        assert record.shard_ids[0] == home
        summary = cluster.elastic_summary()
        assert summary["shard_failures"] == 1
        assert summary["shard_revivals"] == 1


class TestDegradedMode:
    def test_unreplicated_key_on_dead_shard_rejects_typed(self):
        """rf=1 + a dead home shard = degraded mode: offers are refused
        with a failure-typed reason, never silently dropped."""
        rng = np.random.default_rng(11)
        column = BitWeavingColumn(rng.integers(0, 64, size=200), 6)
        cluster = _cluster(2, router=ShardRouter(2, replication_factor=1))
        home = cluster.router.replicas(column)[0]
        assert cluster.fail_shard(home)
        record = cluster.offer(
            ScanRequest(column=column, kind="less_than", constants=(10,))
        )
        assert not record.admitted
        assert record.rejected_reason == "shard_unavailable"
        cluster.drain()
        assert cluster.result().metrics.rejected == 1

    def test_stranded_queued_request_fails_typed(self):
        """Work already queued on the victim with no surviving replica
        fails its record (all-or-nothing) instead of vanishing."""
        rng = np.random.default_rng(12)
        column = BitWeavingColumn(rng.integers(0, 64, size=200), 6)
        cluster = _cluster(2, router=ShardRouter(2, replication_factor=1))
        record = cluster.offer(
            ScanRequest(column=column, kind="less_than", constants=(10,))
        )
        assert record.admitted
        home = record.shard_ids[0]
        assert cluster.fail_shard(home)
        assert not record.admitted
        assert record.rejected_reason == "shard_unavailable"
        cluster.drain()
        summary = cluster.elastic_summary()
        assert summary["failover_failures"] == 1

    def test_session_raises_shard_unavailable(self):
        """The typed outcome surfaces through the unified client API and
        still satisfies legacy `except RequestRejected` handlers."""
        assert issubclass(ShardUnavailable, RequestFailed)
        assert issubclass(RequestFailed, RequestRejected)
        rng = np.random.default_rng(13)
        column = BitWeavingColumn(rng.integers(0, 64, size=200), 6)
        cluster = _cluster(2, router=ShardRouter(2, replication_factor=1))
        session = PimSession(cluster, name="degraded")
        future = session.submit(
            ScanRequest(column=column, kind="less_than", constants=(10,))
        )
        cluster.fail_shard(future.record.shard_ids[0])
        with pytest.raises(ShardUnavailable) as excinfo:
            future.result()
        assert excinfo.value.reason == "shard_unavailable"
        # Admission refusals stay plain RequestRejected, not the subclass.
        response = future.response()
        assert response.status == "rejected"
        assert response.rejected_reason == "shard_unavailable"

    def test_scatter_skips_dead_holders_and_rejects_uncovered(self):
        """A scattered conjunction is all-or-nothing across health too:
        with a predicate column only on a dead shard, admission refuses
        the whole request up front."""
        rng = np.random.default_rng(14)
        index = _bitmap_index(rng)
        cluster = _cluster(
            3, router=ShardRouter(3, strategy="range", replication_factor=1)
        )
        cluster.router.register_names(index.indexed_columns())
        by_shard = cluster.router.partition(index.indexed_columns())
        victim = next(i for i, cols in enumerate(by_shard) if cols)
        cluster.fail_shard(victim)
        record = cluster.offer(
            BitmapConjunctionRequest(
                index=index,
                predicates=(("region", (1, 2)), ("status", (0, 1)), ("tier", (0, 1))),
            )
        )
        assert not record.admitted
        assert record.rejected_reason == "shard_unavailable"


class TestDrainRetireJoin:
    def test_drain_migrates_and_conserves(self):
        rng = np.random.default_rng(21)
        index = _bitmap_index(rng)
        requests = _conjunctions(rng, index, count=16)
        plan = FaultPlan(events=[FaultEvent(at_ns=500.0, action="drain", shard_id=0)])
        cluster = _cluster(
            3, router=ShardRouter(3, replication_factor=2), faults=plan
        )
        result = cluster.run(poisson_schedule(requests, rate_per_s=8e6, seed=21))
        assert result.metrics.completed == len(requests)
        assert result.metrics.rejected == 0
        assert cluster.router.is_alive(0)
        assert not cluster.router.is_routable(0)
        for record in result.records:
            expected, _ = index.evaluate_conjunction(list(record.request.predicates))
            assert np.array_equal(record.value, expected)

    def test_retire_moves_sole_replicas_and_charges_copies(self):
        rng = np.random.default_rng(22)
        index = _bitmap_index(rng)
        cluster = _cluster(3, router=ShardRouter(3, replication_factor=1))
        cluster.router.register_names(index.indexed_columns())
        # Materialize shard views so replica byte-counts see the planes.
        record = cluster.offer(
            BitmapConjunctionRequest(
                index=index,
                predicates=(("region", (1,)), ("status", (0,)), ("tier", (1,))),
            )
        )
        cluster.drain()
        assert record.completed
        victim = 2
        keys_before = cluster.router.placed_keys(victim)
        assert cluster.retire_shard(victim)
        assert cluster.router.is_retired(victim)
        assert cluster.router.placed_keys(victim) == []
        # Every key the victim solely held survives on a live shard.
        for key in keys_before:
            replicas = cluster.router.replicas(key)
            assert replicas and all(s != victim for s in replicas)
        summary = cluster.elastic_summary()
        assert summary["shards_retired"] == 1
        if keys_before:
            assert summary["replications"] >= len(keys_before)
            assert summary["copied_bytes"] > 0
        # Retired shards never come back, and offers keep completing.
        assert not cluster.revive_shard(victim)
        after = cluster.offer(
            BitmapConjunctionRequest(
                index=index, predicates=(("region", (2, 3)), ("tier", (0,)))
            )
        )
        cluster.drain()
        assert after.completed
        assert all(s != victim for s in after.shard_ids)

    def test_join_grows_pool_and_serves(self):
        rng = np.random.default_rng(23)
        cluster = _cluster(2, router=ShardRouter(2, replication_factor=1))
        new_id = cluster.join_shard(at_ns=1000.0)
        assert new_id == 2
        assert cluster.num_shards == 3
        assert cluster.shards[new_id].clock_ns >= 1000.0
        assert cluster.router.is_routable(new_id)
        # A key first seen after the join can land on the new shard.
        columns = [BitWeavingColumn(rng.integers(0, 64, size=100), 6) for _ in range(6)]
        homes = {cluster.router.replicas(c)[0] for c in columns}
        assert new_id in homes
        records = [
            cluster.offer(
                ScanRequest(column=c, kind="less_than", constants=(9,)),
                arrival_ns=1000.0,
            )
            for c in columns
        ]
        cluster.drain()
        assert all(r.completed for r in records)
        assert cluster.elastic_summary()["shards_joined"] == 1


class TestElasticController:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ControllerPolicy(interval_ns=0.0)
        with pytest.raises(ValueError):
            ControllerPolicy(imbalance_threshold=0.5)
        with pytest.raises(ValueError):
            ControllerPolicy(min_shards=4, max_shards=2)
        with pytest.raises(ValueError):
            ControllerPolicy(max_replication=0)

    def test_replicates_hot_key_to_cold_shard(self):
        """Sustained skew on one column re-replicates it to the idle
        shard, with the copy bytes charged there — and results stay
        bit-exact."""
        rng = np.random.default_rng(31)
        index = _bitmap_index(rng)
        cluster = _cluster(2, router=ShardRouter(2, replication_factor=1))
        controller = ElasticController(
            cluster,
            ControllerPolicy(
                interval_ns=2_000.0,
                imbalance_threshold=1.2,
                overload_backlog_ns=1e12,  # isolate the replicate actuator
                replicate_per_tick=2,
            ),
        )
        assert cluster.controller is controller
        # Hammer one column so its home shard backlogs.
        requests = [
            BitmapConjunctionRequest(index=index, predicates=(("region", (1, 2)),))
            for _ in range(30)
        ]
        result = cluster.run(poisson_schedule(requests, rate_per_s=20e6, seed=31))
        assert result.metrics.completed == len(requests)
        replicate_events = [e for e in controller.events if e.action == "replicate"]
        assert replicate_events
        assert replicate_events[0].key == "region"
        assert len(cluster.router.replicas("region")) == 2
        assert result.metrics.replications >= 1
        assert result.metrics.copied_bytes > 0
        expected, _ = index.evaluate_conjunction([("region", (1, 2))])
        for record in result.records:
            assert np.array_equal(record.value, expected)

    def test_joins_under_sustained_overload(self):
        rng = np.random.default_rng(32)
        columns = [BitWeavingColumn(rng.integers(0, 64, size=400), 6) for _ in range(4)]
        cluster = _cluster(2, router=ShardRouter(2, replication_factor=1))
        ElasticController(
            cluster,
            ControllerPolicy(
                interval_ns=1_000.0,
                overload_backlog_ns=100.0,
                overload_windows=2,
                imbalance_threshold=1e9,  # isolate the join actuator
                max_shards=3,
            ),
        )
        requests = [
            ScanRequest(column=columns[i % 4], kind="less_than", constants=(9,))
            for i in range(40)
        ]
        result = cluster.run(poisson_schedule(requests, rate_per_s=20e6, seed=32))
        assert cluster.num_shards == 3  # grew to max_shards, not past it
        assert result.metrics.shards_joined == 1
        assert result.metrics.completed == len(requests)

    def test_retires_when_idle(self):
        cluster = _cluster(3, router=ShardRouter(3, replication_factor=1))
        controller = ElasticController(
            cluster,
            ControllerPolicy(
                interval_ns=1_000.0,
                idle_windows=3,
                min_shards=2,
                imbalance_threshold=1e9,
            ),
        )
        cluster.advance_to(20_000.0)  # idle ticks accumulate
        retire_events = [e for e in controller.events if e.action == "retire"]
        assert retire_events
        assert retire_events[0].shard_id == 2  # youngest routable first
        assert len(cluster.router.routable_shards()) == 2  # floor respected
        assert cluster.elastic_summary()["shards_retired"] == 1

    def test_missed_ticks_collapse(self):
        cluster = _cluster(2, router=ShardRouter(2, replication_factor=1))
        controller = ElasticController(
            cluster, ControllerPolicy(interval_ns=1_000.0, idle_windows=10**6)
        )
        controller.run_due(500.0)
        assert controller.ticks == 0
        controller.run_due(10_500.0)  # 10 periods due; one cumulative tick
        assert controller.ticks == 1
        assert controller.next_tick_ns() == 11_000.0


class TestRetryClientDeadlineBudget:
    def test_keyed_jitter_is_deterministic_and_order_independent(self):
        policy = BackoffPolicy(base_ns=1000.0, multiplier=2.0, jitter=0.5)
        first = policy.delay_ns(2, seed=7, key=3)
        assert policy.delay_ns(2, seed=7, key=3) == first
        assert policy.delay_ns(2, seed=7, key=4) != first
        assert policy.delay_ns(2, seed=8, key=3) != first
        base = 1000.0 * 2.0
        assert base * 0.5 <= first <= base * 1.5
        # The legacy positional-rng path still works.
        rng = np.random.default_rng(0)
        legacy = policy.delay_ns(1, rng)
        assert 500.0 <= legacy <= 1500.0

    def test_retry_budget_capped_by_remaining_slack(self):
        """A retry whose backoff lands past the deadline is not offered:
        the attempt budget is the remaining slack."""
        rng = np.random.default_rng(41)
        columns = [BitWeavingColumn(rng.integers(0, 64, size=200), 6) for _ in range(6)]
        make_events = lambda deadline: [
            ArrivalEvent(
                request=ScanRequest(column=c, kind="less_than", constants=(9,)),
                arrival_ns=0.0,
                deadline_ns=deadline,
            )
            for c in columns
        ]
        # Batch size 1 drains the queue between retry waves, so each wave
        # admits exactly one re-offer.
        make_cluster = lambda: _cluster(
            1, router=ShardRouter(1), max_queue_depth=1, policy=BatchPolicy(max_batch=1)
        )
        policy = BackoffPolicy(base_ns=50_000.0, multiplier=2.0, max_attempts=4)

        tight = RetryClient(make_cluster(), policy=policy, seed=1)
        tight_outcome = tight.run(make_events(deadline=10_000.0))
        assert tight.deadline_exhausted > 0
        # Doomed retries were cut: rejected requests stopped at one attempt.
        assert all(
            len(r.attempts) == 1 for r in tight_outcome.records if r.gave_up
        )

        slack = RetryClient(make_cluster(), policy=policy, seed=1)
        slack_outcome = slack.run(make_events(deadline=1e9))
        assert slack.deadline_exhausted == 0
        assert slack_outcome.delivered_after_retry > 0


class TestFailoverLintAndAudit:
    def test_check_failover_reoffer_rejects_bad_targets(self):
        router = ShardRouter(3, replication_factor=2)
        router.mark_down(1)
        check_failover_reoffer(router, failed_shard=1, target_shards=[0, 2])
        with pytest.raises(FailoverError):
            check_failover_reoffer(router, failed_shard=1, target_shards=[1])
        router.mark_down(2)
        with pytest.raises(FailoverError):
            check_failover_reoffer(router, failed_shard=1, target_shards=[2])

    def test_placement_unavailable_carries_key(self):
        router = ShardRouter(2, replication_factor=1)
        router.mark_down(0)
        router.mark_down(1)
        with pytest.raises(PlacementUnavailable) as excinfo:
            router.route("orphan", lambda shard: 0.0)
        assert excinfo.value.key == "orphan"

    def test_counters_match_cluster_metrics(self):
        """The cluster.failover.* / cluster.scale.* counter taxonomy and
        the ClusterMetrics roll-up tell one story."""
        rng = np.random.default_rng(51)
        index = _bitmap_index(rng)
        requests = _conjunctions(rng, index, count=20)
        plan = kill_revive_schedule([(0, 400.0, 6000.0)])
        cluster = _cluster(
            3,
            router=ShardRouter(3, replication_factor=2),
            faults=plan,
            observe=True,
        )
        result = cluster.run(poisson_schedule(requests, rate_per_s=8e6, seed=51))
        metrics = result.metrics
        counters = cluster.obs.snapshot()["counters"]
        assert counters.get("cluster.failover.kills", 0.0) == metrics.shard_failures
        assert counters.get("cluster.failover.revives", 0.0) == metrics.shard_revivals
        assert (
            counters.get("cluster.failover.migrated_parts", 0.0) == metrics.failovers
        )
        assert (
            counters.get("cluster.failover.records_failed", 0.0)
            == metrics.failover_failures
        )
        assert counters.get("cluster.scale.joins", 0.0) == metrics.shards_joined
        assert counters.get("cluster.scale.retires", 0.0) == metrics.shards_retired
        assert counters.get("cluster.scale.replications", 0.0) == metrics.replications
        assert counters.get("cluster.scale.copied_bytes", 0.0) == metrics.copied_bytes
        assert metrics.shard_failures == 1
        assert metrics.completed == len(requests)

    def test_gauges_published_for_controller(self):
        cluster = _cluster(
            2, router=ShardRouter(2, replication_factor=1), observe=True
        )
        rng = np.random.default_rng(52)
        column = BitWeavingColumn(rng.integers(0, 64, size=200), 6)
        cluster.offer(ScanRequest(column=column, kind="less_than", constants=(9,)))
        cluster.publish_gauges()
        gauges = cluster.obs.snapshot()["gauges"]
        assert gauges["cluster.shards_alive"] == 2.0
        assert gauges["cluster.shards_routable"] == 2.0
        assert gauges["cluster.imbalance"] >= 1.0
        assert "cluster.backlog_ns.shard0" in gauges
        assert "cluster.queue_depth.shard1" in gauges
        assert 0.0 <= gauges["cluster.rejection_rate"] <= 1.0
