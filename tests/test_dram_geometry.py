"""Tests for repro.dram.geometry."""

import pytest

from repro.dram.geometry import DramGeometry


class TestDramGeometryDerived:
    def test_rows_per_bank(self):
        geometry = DramGeometry(subarrays_per_bank=4, rows_per_subarray=128)
        assert geometry.rows_per_bank == 512

    def test_banks_total(self):
        geometry = DramGeometry(channels=2, ranks_per_channel=2, banks_per_rank=8)
        assert geometry.banks_total == 32

    def test_bank_capacity(self):
        geometry = DramGeometry(
            subarrays_per_bank=2, rows_per_subarray=4, row_size_bytes=1024
        )
        assert geometry.bank_capacity_bytes == 2 * 4 * 1024

    def test_total_capacity_is_product_of_banks_and_bank_capacity(self):
        geometry = DramGeometry.ddr3_dimm()
        assert (
            geometry.total_capacity_bytes
            == geometry.banks_total * geometry.bank_capacity_bytes
        )

    def test_row_size_bits(self):
        assert DramGeometry(row_size_bytes=8192).row_size_bits == 65536

    def test_cache_lines_per_row(self):
        assert DramGeometry(row_size_bytes=8192).cache_lines_per_row == 128

    def test_describe_mentions_channels_and_rows(self):
        text = DramGeometry.ddr3_dimm().describe()
        assert "2 ch" in text
        assert "8192 B rows" in text


class TestDramGeometryValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "channels",
            "ranks_per_channel",
            "banks_per_rank",
            "subarrays_per_bank",
            "rows_per_subarray",
            "row_size_bytes",
            "channel_width_bits",
        ],
    )
    def test_rejects_non_positive_fields(self, field):
        with pytest.raises(ValueError):
            DramGeometry(**{field: 0})

    def test_rejects_row_size_not_multiple_of_cache_line(self):
        with pytest.raises(ValueError):
            DramGeometry(row_size_bytes=100)

    def test_frozen(self):
        geometry = DramGeometry()
        with pytest.raises(Exception):
            geometry.channels = 4  # type: ignore[misc]


class TestDramGeometryPresets:
    def test_ddr3_preset_is_4gib(self):
        assert DramGeometry.ddr3_dimm().total_capacity_bytes == 4 << 30

    def test_ddr4_preset_has_16_banks_per_rank(self):
        assert DramGeometry.ddr4_dimm().banks_per_rank == 16

    def test_hmc_vault_rows_are_smaller_than_ddr_rows(self):
        assert (
            DramGeometry.hmc_vault_bank().row_size_bytes
            < DramGeometry.ddr3_dimm().row_size_bytes
        )
