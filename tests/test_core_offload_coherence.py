"""Tests for repro.core.offload and repro.core.coherence."""

import pytest

from repro.core.coherence import CoherenceModel, CoherencePolicy
from repro.core.offload import ExecutionTarget, KernelDescriptor, OffloadPlanner


class TestKernelDescriptor:
    def test_operations_per_byte(self):
        kernel = KernelDescriptor("k", instructions=100, memory_bytes=50)
        assert kernel.operations_per_byte == pytest.approx(2.0)
        assert KernelDescriptor("k", 100, 0).operations_per_byte == float("inf")

    def test_as_phase(self):
        kernel = KernelDescriptor("k", instructions=10, memory_bytes=20, streaming_fraction=0.5)
        phase = kernel.as_phase()
        assert phase.host_instructions == 10
        assert phase.dram_bytes == 20
        assert phase.is_target_function


class TestOffloadPlanner:
    def test_data_movement_bound_kernel_is_offloaded(self):
        planner = OffloadPlanner()
        kernel = KernelDescriptor("tiling", instructions=2e8, memory_bytes=1e9, streaming_fraction=0.5)
        decision = planner.plan(kernel)
        assert decision.target in (ExecutionTarget.PIM_CORE, ExecutionTarget.PIM_ACCELERATOR)
        assert decision.projected_speedup > 1.0
        assert decision.projected_energy_reduction_percent > 0.0

    def test_compute_bound_kernel_stays_on_host(self):
        planner = OffloadPlanner()
        kernel = KernelDescriptor("gemm", instructions=5e10, memory_bytes=2e7, streaming_fraction=0.9)
        decision = planner.plan(kernel)
        assert decision.target is ExecutionTarget.HOST
        assert decision.projected_speedup == 1.0
        assert decision.projected_energy_reduction_percent == 0.0

    def test_crossover_exists_as_intensity_rises(self):
        planner = OffloadPlanner()
        targets = []
        for ops_per_byte in (0.25, 0.5, 1, 2, 4, 16, 64):
            kernel = KernelDescriptor(
                "sweep", instructions=ops_per_byte * 5e8, memory_bytes=5e8
            )
            targets.append(planner.plan(kernel).target)
        assert targets[0] is not ExecutionTarget.HOST
        assert targets[-1] is ExecutionTarget.HOST
        # Once the planner chooses the host it never switches back as the
        # intensity keeps rising (monotone crossover).
        first_host = targets.index(ExecutionTarget.HOST)
        assert all(t is ExecutionTarget.HOST for t in targets[first_host:])

    def test_accelerator_preferred_when_available(self):
        planner = OffloadPlanner()
        kernel = KernelDescriptor(
            "motion_estimation",
            instructions=5e8,
            memory_bytes=1e9,
            streaming_fraction=0.4,
            has_fixed_function_accelerator=True,
        )
        decision = planner.plan(kernel)
        assert decision.target is ExecutionTarget.PIM_ACCELERATOR

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OffloadPlanner(energy_weight=1.5)
        with pytest.raises(ValueError):
            OffloadPlanner(offload_threshold=-0.1)


class TestCoherenceModel:
    def test_flush_cost_scales_with_footprint(self):
        model = CoherenceModel()
        small = model.overhead(CoherencePolicy.FLUSH_BASED, 1 << 20)
        large = model.overhead(CoherencePolicy.FLUSH_BASED, 64 << 20)
        assert large.extra_time_ns > 10 * small.extra_time_ns

    def test_fine_grained_scales_with_sharing(self):
        model = CoherenceModel()
        low = model.overhead(CoherencePolicy.FINE_GRAINED, 64 << 20, shared_access_fraction=0.05)
        high = model.overhead(CoherencePolicy.FINE_GRAINED, 64 << 20, shared_access_fraction=0.5)
        assert high.extra_time_ns > low.extra_time_ns
        assert high.extra_traffic_bytes > low.extra_traffic_bytes

    def test_lazy_batched_is_cheapest_for_low_conflict_kernels(self):
        """The LazyPIM argument: with rare conflicts, batched verification
        costs far less than flushing or per-access probing."""
        model = CoherenceModel()
        footprint = 64 << 20
        kernel_time_ns = 1e6
        flush = model.overhead(CoherencePolicy.FLUSH_BASED, footprint, kernel_time_ns=kernel_time_ns)
        fine = model.overhead(CoherencePolicy.FINE_GRAINED, footprint, kernel_time_ns=kernel_time_ns)
        lazy = model.overhead(CoherencePolicy.LAZY_BATCHED, footprint, kernel_time_ns=kernel_time_ns)
        assert lazy.extra_time_ns < flush.extra_time_ns
        assert lazy.extra_time_ns < fine.extra_time_ns

    def test_lazy_reexecution_grows_with_conflicts(self):
        model = CoherenceModel()
        calm = model.overhead(
            CoherencePolicy.LAZY_BATCHED, 1 << 20, conflict_probability=0.01, kernel_time_ns=1e6
        )
        contended = model.overhead(
            CoherencePolicy.LAZY_BATCHED, 1 << 20, conflict_probability=0.5, kernel_time_ns=1e6
        )
        assert contended.extra_time_ns > calm.extra_time_ns
        assert contended.reexecution_fraction == pytest.approx(0.5)

    def test_validation(self):
        model = CoherenceModel()
        with pytest.raises(ValueError):
            model.overhead(CoherencePolicy.FLUSH_BASED, -1)
        with pytest.raises(ValueError):
            model.overhead(CoherencePolicy.FLUSH_BASED, 10, dirty_fraction=1.5)
