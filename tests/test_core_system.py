"""Tests for repro.core.system and repro.core.kernels."""

import numpy as np
import pytest

from repro.core.kernels import bitmap_intersection, bulk_checkpoint, zero_initialize
from repro.core.system import PIMSystem
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters


@pytest.fixture
def functional_system(small_geometry) -> PIMSystem:
    device = DramDevice(
        small_geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )
    return PIMSystem(device, functional=True)


@pytest.fixture
def analytical_system() -> PIMSystem:
    return PIMSystem.default()


class TestBulkBitwiseApi:
    def test_all_binary_ops_produce_correct_values(self, functional_system):
        a = functional_system.alloc_bitvector(700).fill_random(seed=1)
        b = functional_system.alloc_bitvector(700).fill_random(seed=2)
        assert np.array_equal(
            functional_system.bulk_and(a, b).data[:88], a.expected_and(b)
        )
        assert np.array_equal(
            functional_system.bulk_or(a, b).data[:88], a.expected_or(b)
        )
        assert np.array_equal(
            functional_system.bulk_xor(a, b).data[:88], a.expected_xor(b)
        )

    def test_derived_ops(self, functional_system):
        a = functional_system.alloc_bitvector(256).fill_random(seed=3)
        b = functional_system.alloc_bitvector(256).fill_random(seed=4)
        nand = functional_system.bulk_nand(a, b)
        assert np.array_equal(nand.data[:32], np.bitwise_not(a.expected_and(b)))
        nor = functional_system.bulk_nor(a, b)
        assert np.array_equal(nor.data[:32], np.bitwise_not(a.expected_or(b)))
        xnor = functional_system.bulk_xnor(a, b)
        assert np.array_equal(xnor.data[:32], np.bitwise_not(a.expected_xor(b)))
        inverted = functional_system.bulk_not(a)
        assert np.array_equal(inverted.data[:32], a.expected_not())

    def test_history_records_speedups(self, analytical_system):
        a = analytical_system.alloc_bitvector(1 << 22)
        b = analytical_system.alloc_bitvector(1 << 22)
        analytical_system.bulk_and(a, b)
        record = analytical_system.last_operation()
        assert record.speedup > 1.0
        assert record.energy_reduction > 1.0
        assert "faster" in analytical_system.last_operation_report()

    def test_history_table_and_reset(self, analytical_system):
        a = analytical_system.alloc_bitvector(1 << 20)
        b = analytical_system.alloc_bitvector(1 << 20)
        analytical_system.bulk_or(a, b)
        analytical_system.bulk_xor(a, b)
        table = analytical_system.history_table()
        assert len(table.rows) == 2
        analytical_system.reset_history()
        assert not analytical_system.history
        with pytest.raises(RuntimeError):
            analytical_system.last_operation()


class TestDataMovementApi:
    def test_copy_and_fill_record_history(self, analytical_system):
        copy_metrics = analytical_system.copy(16 << 20)
        fill_metrics = analytical_system.fill(16 << 20)
        assert copy_metrics.bytes_moved_on_channel == 0
        assert fill_metrics.bytes_moved_on_channel == 0
        assert len(analytical_system.history) == 2
        assert all(record.speedup > 1 for record in analytical_system.history)


class TestKernels:
    def test_bitmap_intersection(self, analytical_system):
        vectors = [
            analytical_system.alloc_bitvector(1 << 20).fill_random(seed=i) for i in range(3)
        ]
        result, metrics = bitmap_intersection(analytical_system, vectors)
        assert len(metrics) == 2
        expected = vectors[0].data & vectors[1].data & vectors[2].data
        assert np.array_equal(result.data, expected)

    def test_bitmap_intersection_validation(self, analytical_system):
        single = [analytical_system.alloc_bitvector(64)]
        with pytest.raises(ValueError):
            bitmap_intersection(analytical_system, single)
        mismatched = [
            analytical_system.alloc_bitvector(64),
            analytical_system.alloc_bitvector(128),
        ]
        with pytest.raises(ValueError):
            bitmap_intersection(analytical_system, mismatched)

    def test_zero_initialize_and_checkpoint(self, analytical_system):
        zero_metrics = zero_initialize(analytical_system, 4 << 20)
        assert zero_metrics.name == "rowclone_bulk_fill"
        fpm = bulk_checkpoint(analytical_system, 4 << 20, intra_subarray=True)
        psm = bulk_checkpoint(analytical_system, 4 << 20, intra_subarray=False)
        assert fpm.latency_ns < psm.latency_ns
        with pytest.raises(ValueError):
            zero_initialize(analytical_system, 0)
        with pytest.raises(ValueError):
            bulk_checkpoint(analytical_system, -1)
