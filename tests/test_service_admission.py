"""Tests for per-bank backlog admission, load shedding, and retry clients.

PR 2's admission model spread the queue's serial latency over all banks —
blind to skew.  These tests pin the per-bank backlog vector's semantics:

* balanced traffic behaves exactly like the old scalar model (the
  ``max_backlog_ns`` knob keeps its meaning),
* under skew the vector both rejects work piling onto a hot bank *and*
  admits work bound for idle banks,
* priority-class shedding evicts strictly-lower-priority queued work
  (``rejected_reason="shed"``) only when it actually makes the candidate
  fit, and
* the retry/backoff client re-offers rejections on the virtual clock and
  delivers what a single shot would have dropped.
"""

import numpy as np
import pytest

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.database.bitweaving import BitWeavingColumn
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.service import (
    BackoffPolicy,
    BatchExecutor,
    BatchPolicy,
    RetryClient,
    ScanRequest,
    ServiceFrontend,
    poisson_schedule,
)


def _device(banks: int = 4) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=32,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine(banks: int = 4) -> AmbitEngine:
    return AmbitEngine(
        _device(banks), AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _random_column(rng, num_bits: int = 8, rows: int = 400) -> BitWeavingColumn:
    return BitWeavingColumn(rng.integers(0, 1 << num_bits, size=rows), num_bits)


def _scan(column, constant=40):
    return ScanRequest(column=column, kind="less_than", constants=(constant,))


class TestPerBankBacklog:
    def test_skewed_traffic_saturates_its_bank_early(self):
        """All scans of one column contend for one bank set: the vector
        must reject once *that bank* is full, long before the scalar
        model (total/banks) would."""
        rng = np.random.default_rng(0)
        column = _random_column(rng)
        executor = BatchExecutor(engine=_engine())
        per_request_ns = executor.modeled_latency_ns(_scan(column))
        frontend = ServiceFrontend(
            executor=executor,
            max_queue_depth=100,
            max_backlog_ns=2.5 * per_request_ns,
        )
        records = [frontend.offer(_scan(column)) for _ in range(10)]
        admitted = [r for r in records if r.admitted]
        # One bank's backlog: only floor(2.5) requests fit (the scalar
        # model would have admitted banks*2.5 = 10).
        assert len(admitted) == 2
        assert all(r.rejected_reason == "bank_occupancy" for r in records[2:])

    def test_idle_banks_still_admit_under_skew(self):
        """A hot bank being full must not reject work bound elsewhere."""
        rng = np.random.default_rng(1)
        hot = _random_column(rng)
        executor = BatchExecutor(engine=_engine())
        per_request_ns = executor.modeled_latency_ns(_scan(hot))
        frontend = ServiceFrontend(
            executor=executor,
            max_queue_depth=100,
            max_backlog_ns=1.5 * per_request_ns,
        )
        frontend.offer(_scan(hot))
        blocked = frontend.offer(_scan(hot, 10))
        assert not blocked.admitted  # hot bank is at its bound
        elsewhere = [frontend.offer(_scan(_random_column(rng))) for _ in range(3)]
        # Fresh columns take the remaining bank offsets: all admitted.
        assert all(r.admitted for r in elsewhere)
        banks_used = {tuple(r.modeled_banks) for r in elsewhere if r.admitted}
        assert len(banks_used) == 3
        frontend.drain()

    def test_balanced_traffic_matches_scalar_model(self):
        """Round-robin columns fill banks evenly: admission count equals
        what the old scalar model admitted (semantics kept)."""
        rng = np.random.default_rng(2)
        executor = BatchExecutor(engine=_engine(banks=4))
        probe = _scan(_random_column(rng))
        per_request_ns = executor.modeled_latency_ns(probe)
        frontend = ServiceFrontend(
            executor=executor,
            max_queue_depth=100,
            max_backlog_ns=per_request_ns,
        )
        records = [frontend.offer(_scan(_random_column(rng))) for _ in range(10)]
        admitted = [r for r in records if r.admitted]
        # One request per bank fits, exactly as (total/banks) admitted.
        assert len(admitted) == 4
        assert frontend.backlog_ns <= per_request_ns * (1 + 1e-9)
        assert frontend.mean_backlog_ns <= frontend.backlog_ns

    def test_backlog_vector_accounting_drains(self):
        rng = np.random.default_rng(3)
        frontend = ServiceFrontend(executor=BatchExecutor(engine=_engine()))
        for _ in range(5):
            frontend.offer(_scan(_random_column(rng)))
        assert frontend.backlog_ns > 0.0
        assert any(v > 0 for v in frontend.bank_backlog().values())
        frontend.drain()
        assert frontend.backlog_ns == 0.0
        assert all(v == 0.0 for v in frontend.bank_backlog().values())


class TestLoadShedding:
    def _loaded_frontend(self, rng, bound_requests=2.0, **kwargs):
        executor = BatchExecutor(engine=_engine())
        per_request_ns = executor.modeled_latency_ns(_scan(_random_column(rng)))
        frontend = ServiceFrontend(
            executor=executor,
            max_queue_depth=kwargs.pop("max_queue_depth", 100),
            max_backlog_ns=bound_requests * per_request_ns,
            shed_low_priority=True,
            **kwargs,
        )
        return frontend

    def test_high_priority_sheds_queued_low_priority(self):
        rng = np.random.default_rng(4)
        column = _random_column(rng)
        frontend = self._loaded_frontend(rng, bound_requests=2.0)
        low = [frontend.offer(_scan(column, c), priority=0) for c in (1, 2)]
        assert all(r.admitted for r in low)
        urgent = frontend.offer(_scan(column, 3), priority=5)
        assert urgent.admitted
        # The youngest low-priority request was shed to make room.
        assert not low[1].admitted
        assert low[1].rejected_reason == "shed"
        assert low[0].admitted
        assert frontend.shed_requests == 1
        frontend.drain()
        metrics = frontend.result().metrics
        assert metrics.shed == 1
        assert metrics.rejected == 1
        assert metrics.offered == metrics.admitted + metrics.rejected
        assert not low[1].completed  # shed work is never served

    def test_equal_priority_is_never_shed(self):
        rng = np.random.default_rng(5)
        column = _random_column(rng)
        frontend = self._loaded_frontend(rng, bound_requests=2.0)
        first = [frontend.offer(_scan(column, c), priority=1) for c in (1, 2)]
        same = frontend.offer(_scan(column, 3), priority=1)
        assert not same.admitted
        assert same.rejected_reason == "bank_occupancy"
        assert all(r.admitted for r in first)
        assert frontend.shed_requests == 0

    def test_no_shedding_when_candidate_cannot_fit(self):
        """Shedding every lower-priority request would still not admit a
        request bigger than the bound: nothing may be evicted for it."""
        rng = np.random.default_rng(6)
        column = _random_column(rng)
        executor = BatchExecutor(engine=_engine())
        small_ns = executor.modeled_latency_ns(_scan(column))
        big_column = _random_column(rng, num_bits=8, rows=8000)  # multi-chunk scan
        big_ns = executor.modeled_latency_ns(_scan(big_column))
        assert big_ns > 2 * small_ns
        frontend = ServiceFrontend(
            executor=executor,
            max_queue_depth=100,
            max_backlog_ns=1.5 * small_ns,
            shed_low_priority=True,
        )
        low = frontend.offer(_scan(column), priority=0)
        doomed = frontend.offer(_scan(big_column), priority=9)
        assert not doomed.admitted
        assert doomed.rejected_reason == "bank_occupancy"
        assert low.admitted, "no victim may be shed for a doomed candidate"
        assert frontend.shed_requests == 0

    def test_queue_full_victim_survives_doomed_occupancy(self):
        """Regression: a depth-full arrival that would still fail the
        occupancy bound must not destroy the queued victim."""
        rng = np.random.default_rng(12)
        column = _random_column(rng)
        executor = BatchExecutor(engine=_engine())
        small_ns = executor.modeled_latency_ns(_scan(column))
        big_column = _random_column(rng, num_bits=8, rows=8000)
        assert executor.modeled_latency_ns(_scan(big_column)) > 2 * small_ns
        frontend = ServiceFrontend(
            executor=executor,
            max_queue_depth=1,
            max_backlog_ns=1.5 * small_ns,
            shed_low_priority=True,
        )
        low = frontend.offer(_scan(column), priority=0)
        doomed = frontend.offer(_scan(big_column), priority=9)
        assert not doomed.admitted
        assert doomed.rejected_reason == "bank_occupancy"
        assert low.admitted, "victim must survive a doomed admission"
        assert frontend.shed_requests == 0
        assert frontend.queue_depth == 1

    def test_queue_full_sheds_one_victim(self):
        rng = np.random.default_rng(7)
        frontend = ServiceFrontend(
            executor=BatchExecutor(engine=_engine()),
            max_queue_depth=2,
            shed_low_priority=True,
        )
        low = [frontend.offer(_scan(_random_column(rng)), priority=0) for _ in range(2)]
        urgent = frontend.offer(_scan(_random_column(rng)), priority=3)
        assert urgent.admitted
        assert sum(1 for r in low if not r.admitted) == 1
        shed = next(r for r in low if not r.admitted)
        assert shed.rejected_reason == "shed"
        # A same-priority arrival still sees queue_full.
        also_low = frontend.offer(_scan(_random_column(rng)), priority=0)
        assert also_low.rejected_reason == "queue_full"

    def test_cancel_withdraws_queued_request(self):
        rng = np.random.default_rng(8)
        frontend = ServiceFrontend(executor=BatchExecutor(engine=_engine()))
        record = frontend.offer(_scan(_random_column(rng)))
        other = frontend.offer(_scan(_random_column(rng)))
        assert frontend.cancel(record)
        assert not record.admitted
        assert record.rejected_reason == "cancelled"
        assert not frontend.cancel(record)  # already gone
        frontend.drain()
        assert other.completed and not record.completed
        assert frontend.shed_requests == 0  # cancel is not shedding


class TestRetryClient:
    def test_rejections_are_delivered_after_backoff(self):
        rng = np.random.default_rng(9)
        executor = BatchExecutor(engine=_engine())
        frontend = ServiceFrontend(
            executor=executor,
            max_queue_depth=2,
            policy=BatchPolicy(max_batch=2),
        )
        columns = [_random_column(rng) for _ in range(8)]
        requests = [_scan(c) for c in columns]
        # Burst arrival: a 2-deep queue drops most of a one-shot stream.
        events = poisson_schedule(requests, rate_per_s=1e9, seed=9)
        client = RetryClient(
            frontend,
            BackoffPolicy(base_ns=10_000.0, multiplier=2.0, max_attempts=6),
        )
        outcome = client.run(events)
        assert outcome.delivered == len(requests)
        assert outcome.delivered_after_retry > 0
        assert outcome.gave_up == 0
        assert outcome.total_attempts > len(requests)
        for record in outcome.records:
            assert record.final.completed
            expected, _ = record.event.request.column.scan(
                record.event.request.kind, *record.event.request.constants
            )
            assert np.array_equal(record.final.value, expected)
            # Retries re-offer strictly later on the virtual clock.
            arrivals = [a.arrival_ns for a in record.attempts]
            assert arrivals == sorted(arrivals)
            if record.retries:
                assert arrivals[1] >= record.event.arrival_ns + 10_000.0

    def test_gives_up_after_max_attempts(self):
        rng = np.random.default_rng(10)
        frontend = ServiceFrontend(
            executor=BatchExecutor(engine=_engine()),
            max_queue_depth=1,
            # Huge window: the queue never drains during the retry horizon.
            policy=BatchPolicy(max_batch=64, window_ns=1e12, urgency_slack_ns=None),
        )
        requests = [_scan(_random_column(rng)) for _ in range(3)]
        events = poisson_schedule(requests, rate_per_s=1e9, seed=10)
        client = RetryClient(
            frontend, BackoffPolicy(base_ns=100.0, multiplier=2.0, max_attempts=3)
        )
        outcome = client.run(events)
        assert outcome.gave_up > 0
        for record in outcome.records:
            if record.gave_up:
                assert len(record.attempts) == 3
                assert all(not a.admitted for a in record.attempts)

    def test_jitter_is_seeded_and_bounded(self):
        policy = BackoffPolicy(base_ns=1000.0, multiplier=2.0, jitter=0.5)
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        delays_a = [policy.delay_ns(i, rng_a) for i in range(1, 5)]
        delays_b = [policy.delay_ns(i, rng_b) for i in range(1, 5)]
        assert delays_a == delays_b
        for attempt, delay in enumerate(delays_a, start=1):
            nominal = 1000.0 * 2.0 ** (attempt - 1)
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_ns=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)

    def test_retry_client_drives_a_cluster(self):
        """The client speaks the shared frontend protocol: a sharded
        cluster retries just like a single device."""
        from repro.cluster import ClusterFrontend

        rng = np.random.default_rng(11)
        cluster = ClusterFrontend(
            num_shards=2,
            engine_factory=lambda: _engine(),
            policy=BatchPolicy(max_batch=2),
            max_queue_depth=2,
        )
        requests = [_scan(_random_column(rng)) for _ in range(8)]
        events = poisson_schedule(requests, rate_per_s=1e9, seed=11)
        outcome = RetryClient(
            cluster, BackoffPolicy(base_ns=10_000.0, max_attempts=6)
        ).run(events)
        assert outcome.delivered == len(requests)
        assert outcome.result.metrics.completed == outcome.delivered
