"""Tests for the repetition-aware result cache (`repro.cache`).

The load-bearing acceptance property: a cache-on frontend is bit-exact
with a cache-off frontend on any mixed read/write stream — on the
single-device service tier and the sharded cluster tier, both under
``sanitize=True``.  Around it: the ResultCache unit surface (LRU
eviction, copy-out alias safety, column-level invalidation, write
epochs), the same-batch write hazard regressions (the optimizer's
batch-local CSE table and the epoch-guarded fills), end-to-end
accounting through ``Response.details`` and ``SessionReport``, and the
``cache.*`` observability counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.api import PimSession
from repro.cache import ResultCache, resolve_cache
from repro.cluster import ClusterFrontend
from repro.database.bitmap_index import BitmapIndex
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.service import (
    BatchExecutor,
    BatchPolicy,
    BitmapConjunctionRequest,
    ServiceFrontend,
)
from repro.storage import AppendRequest, UpdateRequest, is_write_request
from repro.verify import CacheConsistencyError
from repro.verify.plan_lint import lint_cache_consistency

CARDINALITIES = {"region": 6, "status": 4, "tier": 3}


def _device(banks: int = 4) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=32,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine(banks: int = 4) -> AmbitEngine:
    return AmbitEngine(
        _device(banks), AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _table_index(rng, rows: int = 200):
    table = ColumnTable("t", rows)
    for name, cardinality in CARDINALITIES.items():
        table.add_column(
            name, rng.integers(0, cardinality, size=rows), cardinality=cardinality
        )
    return table, BitmapIndex(table, list(CARDINALITIES))


def _frontend(cache, **kwargs) -> ServiceFrontend:
    kwargs.setdefault("policy", BatchPolicy(max_batch=4, window_ns=None))
    kwargs.setdefault("max_queue_depth", 256)
    kwargs.setdefault("maintenance", "eager")
    return ServiceFrontend(
        executor=BatchExecutor(engine=_engine(), sanitize=True),
        cache=cache,
        **kwargs,
    )


def _mixed_stream(rng, table, index, count: int = 24):
    """A repetition-heavy mixed stream against one table/index pair."""
    templates = []
    for _ in range(4):
        picked = rng.choice(len(CARDINALITIES), size=2, replace=False)
        predicates = []
        for c in picked:
            name = list(CARDINALITIES)[c]
            values = rng.choice(CARDINALITIES[name], size=2, replace=False)
            predicates.append((name, tuple(int(v) for v in values)))
        templates.append(tuple(predicates))
    requests = []
    for _ in range(count):
        if rng.random() < 0.25:
            row_ids = rng.choice(table.num_rows, size=6, replace=False)
            values = rng.integers(0, CARDINALITIES["status"], size=6)
            requests.append(
                UpdateRequest(
                    table=table, index=index, column="status",
                    row_ids=[int(r) for r in row_ids],
                    values=[int(v) for v in values],
                )
            )
        else:
            requests.append(
                BitmapConjunctionRequest(
                    index=index,
                    predicates=templates[int(rng.integers(0, len(templates)))],
                )
            )
    return requests


def _replay(rng_seed: int, build):
    """Serve the same seeded stream through ``build(table, index)``."""
    rng = np.random.default_rng(rng_seed)
    table, index = _table_index(rng)
    frontend = build(table, index)
    for request in _mixed_stream(rng, table, index):
        frontend.offer(request)
        if rng.random() < 0.5:
            frontend.drain()  # cross-batch boundaries exercise the cache
    frontend.drain()
    return frontend


class TestResultCacheUnit:
    def test_capacities_validate(self):
        with pytest.raises(ValueError):
            ResultCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            ResultCache(capacity_entries=0)

    def test_resolve_normalizes(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert isinstance(resolve_cache(True), ResultCache)
        cache = ResultCache()
        assert resolve_cache(cache) is cache

    def test_hits_return_copies_never_the_stored_buffer(self):
        cache = ResultCache()
        index = object()
        cache.put(("k",), index, ("status",), np.arange(8, dtype=np.uint8), 64)
        first = cache.get(("k",), index, 64)
        first[:] = 0  # a consumer scribbling on its hit...
        second = cache.get(("k",), index, 64)
        assert np.array_equal(second, np.arange(8, dtype=np.uint8))  # ...harms nobody
        assert cache.hits == 2

    def test_lru_eviction_counts(self):
        cache = ResultCache(capacity_entries=2)
        index = object()
        for i in range(3):
            cache.put((i,), index, ("c",), np.zeros(4, dtype=np.uint8), 32)
        assert cache.live_entries == 2
        assert cache.evictions == 1
        assert cache.get((0,), index, 32) is None  # oldest went first

    def test_invalidation_drops_only_dependent_entries(self):
        cache = ResultCache()
        index = object()
        cache.put(("a",), index, ("status",), np.zeros(4, dtype=np.uint8), 32)
        cache.put(("b",), index, ("region",), np.zeros(4, dtype=np.uint8), 32)
        cache.put(("c",), index, ("region", "status"), np.zeros(4, dtype=np.uint8), 32)
        assert cache.invalidate_columns(index, ["status"]) == 2
        assert cache.entries_for(index) == [("b",)]
        assert cache.invalidations == 2

    def test_invalidate_index_drops_everything_for_that_index(self):
        cache = ResultCache()
        index, other = object(), object()
        cache.put(("a",), index, ("status",), np.zeros(4, dtype=np.uint8), 32)
        cache.put(("b",), other, ("status",), np.zeros(4, dtype=np.uint8), 32)
        assert cache.invalidate_index(index) == 1
        assert cache.entries_for(other) == [("b",)]

    def test_write_epochs_advance_on_invalidation(self):
        cache = ResultCache()
        index = object()
        before = cache.write_epoch(index, ["status"])
        cache.invalidate_columns(index, ["status"])
        assert cache.write_epoch(index, ["status"]) > before
        untouched = cache.write_epoch(index, ["region"])
        cache.invalidate_index(index)  # appends/deletes bump index-wide
        assert cache.write_epoch(index, ["region"]) > untouched

    def test_row_count_mismatch_is_dropped_defensively(self):
        cache = ResultCache()
        index = object()
        cache.put(("k",), index, ("c",), np.zeros(4, dtype=np.uint8), 32)
        assert cache.get(("k",), index, 40) is None
        assert cache.live_entries == 0


class TestBitExactness:
    """Cache on == cache off, under sanitize, on both tiers."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_service_tier(self, seed):
        on = _replay(seed, lambda t, i: _frontend(cache=True))
        off = _replay(seed, lambda t, i: _frontend(cache=None))
        on_records = on.result().completed()
        off_records = off.result().completed()
        assert len(on_records) == len(off_records)
        for ours, ref in zip(on_records, off_records):
            if is_write_request(ref.request):
                assert ours.value == ref.value
            else:
                assert np.array_equal(ours.value, ref.value)
        assert on.cache is not None and on.cache.hits > 0

    @pytest.mark.parametrize("seed", [3, 17])
    def test_cluster_tier(self, seed):
        def serve(cache):
            rng = np.random.default_rng(seed)
            table, index = _table_index(rng)
            cluster = ClusterFrontend(
                num_shards=2,
                engine_factory=lambda: _engine(),
                policy=BatchPolicy(max_batch=4, window_ns=None),
                sanitize=True,
                cache=cache,
                maintenance="eager",
            )
            records = []
            for request in _mixed_stream(rng, table, index, count=16):
                records.append(cluster.offer(request))
                if rng.random() < 0.5:
                    cluster.drain()
            cluster.drain()
            return records, cluster

        on_records, on_cluster = serve(cache=True)
        off_records, _ = serve(cache=None)
        assert len(on_records) == len(off_records)
        for ours, ref in zip(on_records, off_records):
            if is_write_request(ref.request):
                assert ours.value == ref.value
            else:
                assert np.array_equal(ours.value, ref.value)
        metrics = on_cluster.result().metrics
        assert metrics.cache_hits > 0
        assert metrics.cache_invalidations > 0


class TestSameBatchWriteHazards:
    """Writes landing mid-batch must not leak pre-write state."""

    PREDICATES = (("status", (0, 1)), ("region", (0, 1, 2)))

    def _read(self, index):
        return BitmapConjunctionRequest(index=index, predicates=self.PREDICATES)

    def _update_out_of_result(self, rng, table, index):
        """Move matching rows to status=3, shrinking the read's result."""
        status = table.column("status")
        matching = np.flatnonzero((status == 0) | (status == 1))[:40]
        return UpdateRequest(
            table=table, index=index, column="status",
            row_ids=[int(r) for r in matching],
            values=[3] * len(matching),
        )

    def test_batch_local_cse_is_invalidated_by_writes(self):
        """Regression: read / write / read closing in ONE batch.  The
        second read must re-emit from the mutated planes instead of
        riding the first read's CSE'd sub-chain vector."""

        def serve(cache):
            rng = np.random.default_rng(23)
            table, index = _table_index(rng)
            frontend = _frontend(cache=cache, policy=BatchPolicy(max_batch=3, window_ns=None))
            first = frontend.offer(self._read(index))
            frontend.offer(self._update_out_of_result(rng, table, index))
            second = frontend.offer(self._read(index))
            frontend.drain()
            return first, second

        on_first, on_second = serve(cache=True)
        off_first, off_second = serve(cache=None)
        # The write really changed the answer mid-batch...
        assert not np.array_equal(off_first.value, off_second.value)
        # ...and the optimized path tracked it bit for bit.
        assert np.array_equal(on_first.value, off_first.value)
        assert np.array_equal(on_second.value, off_second.value)

    def test_stale_fills_are_bypassed_by_the_epoch_guard(self):
        """A fill planned before a same-batch write must not land."""
        rng = np.random.default_rng(29)
        table, index = _table_index(rng)
        frontend = _frontend(cache=True, policy=BatchPolicy(max_batch=2, window_ns=None))
        frontend.offer(self._read(index))
        frontend.offer(self._update_out_of_result(rng, table, index))
        frontend.drain()
        cache = frontend.cache
        assert cache.bypasses > 0
        lint_cache_consistency(cache, index)  # nothing stale survived

    def test_cache_consistency_lint_catches_planted_staleness(self):
        rng = np.random.default_rng(31)
        _table, index = _table_index(rng)
        cache = ResultCache()
        cache.put(("k",), index, ("status",), np.zeros((index.num_rows + 7) // 8, dtype=np.uint8), index.num_rows)
        lint_cache_consistency(cache, index)  # clean entry certifies
        index.mark_dirty(["status"])  # a write the cache never heard about
        with pytest.raises(CacheConsistencyError):
            lint_cache_consistency(cache, index)


class TestAccounting:
    def test_frontend_metrics_and_obs_counters(self):
        rng = np.random.default_rng(41)
        table, index = _table_index(rng)
        frontend = _frontend(cache=True, observe=True)
        read = BitmapConjunctionRequest(
            index=index, predicates=(("status", (0, 1)), ("tier", (0, 1)))
        )
        frontend.offer(read)
        frontend.drain()
        frontend.offer(read)  # second batch: served from the cache
        frontend.drain()
        frontend.offer(
            AppendRequest(
                table=table, index=index,
                rows={name: [0] for name in CARDINALITIES},
            )
        )
        frontend.drain()
        metrics = frontend.result().metrics
        assert metrics.cache_hits > 0
        assert metrics.cache_misses > 0
        assert metrics.cache_invalidations > 0
        counters = frontend.obs.metrics.snapshot()["counters"]
        assert counters["cache.hit"] == metrics.cache_hits
        assert counters["cache.miss"] == metrics.cache_misses
        assert counters["cache.invalidations"] == metrics.cache_invalidations

    def test_session_responses_and_report_carry_cache_fields(self):
        rng = np.random.default_rng(43)
        table, index = _table_index(rng)
        session = PimSession(_frontend(cache=True), name="cached")
        predicates = [("status", (0, 1)), ("region", (0, 1))]
        session.conjunction(index, predicates)
        session.drain()
        repeat = session.conjunction(index, predicates)
        session.drain()
        write = session.update(index=index, table=table, column="status", row_ids=[0, 1], values=[2, 3])
        session.drain()
        assert repeat.response().details.cache_hits >= 1
        assert write.response().value == 2
        report = session.report()
        assert report.details.cache_hits >= 1
        assert report.details.cache_invalidations >= 1
