"""Tests for the observability plane (``repro.obs``).

The load-bearing acceptance properties:

* **bit-exactness** — a service or cluster run with ``observe=True`` is
  identical to the same run with ``observe=False``: same per-request
  timestamps, same values, same ``QueueMetrics`` / ``ClusterMetrics``
  accounting (spans are stamped post-hoc from timestamps the scheduler
  already computed, so this holds by construction — and is pinned here);
* **zero-overhead default** — ``observe=False`` allocates no span
  objects on the hot path (asserted by counting allocations, not
  wall-clock);
* **faithful export** — the Perfetto trace validates against the schema
  in ``tools/validate_bench.py``, carries one track per bank lane plus
  the host lane, and replaying its exec-span intervals reproduces
  ``LaneSchedule.busy_union_ns`` exactly.

Around them: streaming-histogram accuracy, the metrics snapshot schema,
the trace accessors on ``Future``/``Response``/``SessionReport``, the
``obs-wall-clock`` lint rule, the ``percentile_or`` fix, and the text
renderers.
"""

import importlib.util
import json
import math
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis import render_lane_timeline, render_span_tree
from repro.analysis.metrics import QueueMetrics, percentile, percentile_or
from repro.cluster import ClusterFrontend
from repro.database.bitweaving import BitWeavingColumn
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.obs import (
    NULL_OBSERVER,
    NULL_SPAN,
    MetricsRegistry,
    Observer,
    Span,
    StreamingHistogram,
    Tracer,
    build_trace,
    resolve_observe,
    write_trace,
)
from repro.service import (
    BatchExecutor,
    BatchPolicy,
    ScanRequest,
    ServiceFrontend,
    poisson_schedule,
)
from repro.service.lanes import LaneSchedule

_TOOLS = Path(__file__).resolve().parent.parent / "tools"


def _load_tool(name: str):
    """Import a script from ``tools/`` (not a package) as a module."""
    spec = importlib.util.spec_from_file_location(name, _TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module  # dataclasses resolve types via sys.modules
    spec.loader.exec_module(module)
    return module


def _device(banks: int = 2) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=32,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine(banks: int = 2) -> AmbitEngine:
    return AmbitEngine(
        _device(banks), AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _scan_requests(rng, count: int = 24, banks: int = 2):
    columns = [
        BitWeavingColumn(rng.integers(0, 64, size=300), 6) for _ in range(banks * 2)
    ]
    return [
        ScanRequest(
            column=columns[i % len(columns)],
            kind="between" if i % 5 == 0 else "less_than",
            constants=(5, 50) if i % 5 == 0 else (int(rng.integers(1, 64)),),
        )
        for i in range(count)
    ]


def _service_frontend(observe, *, banks: int = 2, max_queue_depth: int = 8):
    return ServiceFrontend(
        executor=BatchExecutor(engine=_engine(banks)),
        policy=BatchPolicy(max_batch=4, window_ns=None),
        max_queue_depth=max_queue_depth,
        observe=observe,
    )


def _run_service(observe, seed: int = 3, count: int = 24, max_queue_depth: int = 8):
    rng = np.random.default_rng(seed)
    frontend = _service_frontend(observe, max_queue_depth=max_queue_depth)
    events = poisson_schedule(
        _scan_requests(rng, count=count), rate_per_s=5e6, seed=seed
    )
    result = frontend.run(events, name="obs_test")
    return frontend, result


# ---------------------------------------------------------------------
# Streaming metrics
# ---------------------------------------------------------------------
class TestStreamingHistogram:
    def test_quantiles_track_numpy_within_bucket_resolution(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=8.0, sigma=1.5, size=4000)
        hist = StreamingHistogram("lat")
        for value in samples:
            hist.observe(float(value))
        # Log buckets at 8/octave resolve ~9% per bucket; 12% relative
        # error covers boundary effects without retaining any sample.
        for q in (50.0, 90.0, 99.0):
            exact = float(np.percentile(samples, q))
            assert hist.quantile(q) == pytest.approx(exact, rel=0.12)
        assert hist.count == 4000
        assert hist.total == pytest.approx(float(samples.sum()))
        assert hist.min_value == pytest.approx(float(samples.min()))
        assert hist.max_value == pytest.approx(float(samples.max()))

    def test_zero_and_empty_handling(self):
        empty = StreamingHistogram("empty")
        assert empty.quantile(50.0) == 0.0
        assert empty.snapshot()["count"] == 0

        hist = StreamingHistogram("zeros")
        for value in (0.0, 0.0, 8.0):
            hist.observe(value)
        assert hist.quantile(50.0) == 0.0      # rank 2 of 3 lands in zeros
        assert hist.quantile(99.0) == pytest.approx(8.0)  # clamped to max

    def test_registry_snapshot_matches_schema(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        registry.counter("requests").inc(2.0)
        registry.gauge("depth").set(7.0)
        for value in (10.0, 20.0, 30.0):
            registry.histogram("wait_ns").observe(value)

        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests"] == 3.0
        assert snapshot["gauges"]["depth"] == 7.0
        assert snapshot["histograms"]["wait_ns"]["count"] == 3
        # get-or-create returns the same instrument
        assert registry.counter("requests") is registry.counter("requests")

        path = tmp_path / "METRICS_test.json"
        path.write_text(json.dumps(snapshot))
        validate_bench = _load_tool("validate_bench")
        assert validate_bench.validate_file(path) == []


class TestPercentileOr:
    def test_percentile_returns_none_on_empty(self):
        assert percentile([], 50.0) is None
        assert percentile([4.0], 50.0) == 4.0

    def test_percentile_or_defaults_explicitly(self):
        assert percentile_or([], 50.0) == 0.0
        assert percentile_or([], 50.0, default=-1.0) == -1.0
        # The trap the helper exists for: a legitimate 0.0 percentile must
        # survive (``percentile(...) or default`` would replace it).
        assert percentile_or([0.0, 0.0], 99.0, default=-1.0) == 0.0

    def test_queue_metrics_from_no_samples(self):
        metrics = QueueMetrics.from_samples("idle", [], [])
        assert metrics.wait_p50_ns == 0.0
        assert metrics.wait_p99_ns == 0.0
        assert metrics.sojourn_p50_ns == 0.0
        assert metrics.sojourn_p99_ns == 0.0


# ---------------------------------------------------------------------
# The disabled path
# ---------------------------------------------------------------------
class TestDisabledPath:
    def test_observe_false_allocates_no_spans(self):
        frontend, result = None, None
        before = Span.allocated
        frontend, result = _run_service(observe=False)
        assert Span.allocated - before == 0
        assert frontend.obs is NULL_OBSERVER
        assert result.metrics.completed > 0  # the run itself was real

    def test_null_tracer_hands_out_the_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", start_ns=1.0)
        assert span is NULL_SPAN
        assert span.child("nested") is NULL_SPAN
        assert span.set(key="value") is span  # chainable no-ops
        assert tracer.roots == []

    def test_resolve_observe(self):
        assert resolve_observe(False) is NULL_OBSERVER
        fresh = resolve_observe(True)
        assert fresh.enabled and fresh is not NULL_OBSERVER
        shared = Observer()
        assert resolve_observe(shared) is shared


# ---------------------------------------------------------------------
# Bit-exactness: observe=True changes nothing
# ---------------------------------------------------------------------
class TestBitExactness:
    @staticmethod
    def _same_ns(a, b):
        # Rejected records carry NaN timestamps; NaN == NaN is False.
        return a == b or (math.isnan(a) and math.isnan(b))

    def _assert_runs_identical(self, plain, traced):
        assert plain.metrics == traced.metrics
        assert len(plain.records) == len(traced.records)
        for a, b in zip(plain.records, traced.records):
            assert a.arrival_ns == b.arrival_ns
            assert self._same_ns(a.start_ns, b.start_ns)
            assert self._same_ns(a.finish_ns, b.finish_ns)
            assert a.admitted == b.admitted
            if a.value is None or b.value is None:
                assert a.value is None and b.value is None
            else:
                assert np.array_equal(a.value, b.value)

    def test_service_run_is_bit_exact_with_tracing_on(self):
        _, plain = _run_service(observe=False)
        _, traced = _run_service(observe=True)
        self._assert_runs_identical(plain, traced)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        depth=st.integers(min_value=2, max_value=12),
    )
    def test_service_bit_exactness_property(self, seed, depth):
        """Across seeds and shed pressure: tracing never perturbs the run."""
        _, plain = _run_service(observe=False, seed=seed, count=12, max_queue_depth=depth)
        _, traced = _run_service(observe=True, seed=seed, count=12, max_queue_depth=depth)
        self._assert_runs_identical(plain, traced)

    def test_cluster_run_is_bit_exact_with_tracing_on(self):
        def run(observe):
            rng = np.random.default_rng(6)
            cluster = ClusterFrontend(
                num_shards=2,
                engine_factory=_engine,
                policy=BatchPolicy(max_batch=3),
                observe=observe,
            )
            events = poisson_schedule(
                _scan_requests(rng, count=16), rate_per_s=4e6, seed=6
            )
            return cluster, cluster.run(events)

        _, plain = run(False)
        traced_cluster, traced = run(True)
        assert plain.metrics == traced.metrics
        for a, b in zip(plain.records, traced.records):
            assert a.arrival_ns == b.arrival_ns
            assert self._same_ns(a.finish_ns, b.finish_ns)
            assert np.array_equal(a.value, b.value)
        # Part spans were re-parented under each cluster root: no stray
        # shard-level "request" roots remain at the top level (batch and
        # plan spans legitimately stay as track-assigned roots).
        roots = traced_cluster.obs.tracer.roots
        assert any(r.name == "cluster_request" for r in roots)
        assert not any(r.name == "request" for r in roots)
        parts = [
            s
            for r in roots
            if r.name == "cluster_request"
            for s in r.walk()
            if s.name == "request"
        ]
        assert parts and all(p.attrs.get("shard") is not None for p in parts)


# ---------------------------------------------------------------------
# The recorded span trees and metrics
# ---------------------------------------------------------------------
class TestRecordedSpans:
    def test_completed_request_tree_shape(self):
        frontend, result = _run_service(observe=True)
        completed = result.completed()
        assert completed
        record = completed[0]
        assert record.trace is not None
        names = [span.name for span in record.trace.walk()]
        assert names == ["request", "admission", "queue", "service"]
        assert record.trace.end_ns == record.finish_ns
        assert record.trace.attrs["status"] == "completed"
        service = record.trace.find("service")
        assert service.start_ns == record.start_ns
        assert service.end_ns == record.finish_ns

    def test_rejected_request_tree_and_counters(self):
        frontend, result = _run_service(observe=True, max_queue_depth=2)
        metrics = result.metrics
        assert metrics.rejected > 0
        counters = frontend.obs.snapshot()["counters"]
        assert counters["frontend.offered"] == metrics.offered
        assert counters["frontend.completed"] == metrics.completed
        assert counters["frontend.rejected"] == metrics.rejected
        rejected = [r for r in result.records if not r.admitted]
        span = rejected[0].trace
        assert span.attrs["status"] == "rejected"
        assert span.attrs["reason"]
        admission = span.find("admission")
        assert admission.attrs["admitted"] is False

    def test_executor_lanes_become_tracks(self):
        frontend, _ = _run_service(observe=True)
        executor = frontend.executor
        expected = {str(key) for key in executor.active_bank_keys()}
        assert set(frontend.obs.tracer.tracks) == expected | {"host", "batches"}

    def test_session_exposes_trace_and_obs_snapshot(self):
        from repro.api import PimSession

        rng = np.random.default_rng(2)
        session = PimSession.over_service(engine=_engine(), observe=True)
        columns = [BitWeavingColumn(rng.integers(0, 64, size=300), 6) for _ in range(3)]
        futures = [session.scan(c, "less_than", 20) for c in columns]
        session.drain()
        for future in futures:
            assert future.trace is not None
            assert future.trace.name == "request"
            assert future.trace.attrs["session"] == session.name
            assert future.response().trace is future.trace
        report = session.report()
        assert report.obs is not None
        assert report.obs["counters"]["frontend.completed"] >= len(futures)

    def test_session_report_accounting_identical_on_and_off(self):
        import dataclasses

        from repro.api import PimSession

        def run(observe):
            rng = np.random.default_rng(5)
            session = PimSession.over_service(engine=_engine(), observe=observe)
            columns = [
                BitWeavingColumn(rng.integers(0, 64, size=300), 6) for _ in range(4)
            ]
            for column in columns:
                session.scan(column, "less_than", 30)
                session.scan(column, "between", 5, 50)
            session.drain()
            return session.report()

        plain = run(False)
        traced = run(True)
        assert plain.obs is None and traced.obs is not None
        # Everything but the snapshot itself is identical accounting.
        assert dataclasses.replace(traced, obs=None) == plain

    def test_untraced_session_reports_no_obs(self):
        from repro.api import PimSession

        session = PimSession.over_service(engine=_engine())
        rng = np.random.default_rng(2)
        column = BitWeavingColumn(rng.integers(0, 64, size=300), 6)
        future = session.scan(column, "less_than", 20)
        session.drain()
        assert future.trace is None
        assert session.report().obs is None


# ---------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------
class TestPerfettoExport:
    def test_trace_validates_and_replays_busy_union(self, tmp_path):
        frontend, _ = _run_service(observe=True)
        path = write_trace(
            tmp_path / "TRACE_obs.json",
            frontend.obs.tracer,
            metrics=frontend.obs.metrics,
        )

        validate_bench = _load_tool("validate_bench")
        assert validate_bench.validate_file(path) == []

        payload = json.loads(path.read_text())
        events = payload["traceEvents"]

        # One track per bank lane, plus the host lane and the batch track.
        lane_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 0
        }
        expected = {str(k) for k in frontend.executor.active_bank_keys()}
        assert lane_names == expected | {"host", "batches"}

        # Replaying the exported exec intervals through a fresh busy-union
        # accumulator reproduces the scheduler's own accounting exactly:
        # place() added each placement's interval once, and re-covered
        # intervals contribute exactly 0.0.
        replay = LaneSchedule()
        for event in events:
            if event["ph"] == "X" and event["pid"] == 0 and event.get("cat") == "exec":
                replay._add_interval(
                    event["args"]["start_ns"], event["args"]["finish_ns"]
                )
        assert replay.busy_union_ns == frontend.executor.lanes.busy_union_ns

    def test_trace_event_envelope(self):
        frontend, _ = _run_service(observe=True)
        payload = build_trace(frontend.obs.tracer, metrics=frontend.obs.metrics)
        assert payload["displayTimeUnit"] == "ns"
        assert "metrics" in payload
        for event in payload["traceEvents"]:
            if event["ph"] != "X":
                continue
            # ts/dur are Perfetto microseconds of the exact ns in args.
            assert event["ts"] == pytest.approx(event["args"]["start_ns"] / 1e3)
            total = event["args"]["finish_ns"] - event["args"]["start_ns"]
            assert event["dur"] == pytest.approx(total / 1e3)

    def test_open_spans_are_skipped(self):
        tracer = Tracer()
        tracer.span("closed", start_ns=0.0, end_ns=10.0)
        tracer.span("open", start_ns=5.0)  # never ended
        names = [e["name"] for e in build_trace(tracer)["traceEvents"] if e["ph"] == "X"]
        assert names == ["closed #0"] or "closed" in " ".join(names)


# ---------------------------------------------------------------------
# The obs-wall-clock lint rule
# ---------------------------------------------------------------------
class TestObsWallClockLint:
    def test_clock_imports_flagged_inside_obs(self):
        lint = _load_tool("lint_invariants")
        findings = lint.lint_source(
            "import time\nimport datetime\n", "src/repro/obs/trace.py"
        )
        assert [f.rule for f in findings] == ["obs-wall-clock", "obs-wall-clock"]

    def test_datetime_allowed_outside_obs(self):
        lint = _load_tool("lint_invariants")
        findings = lint.lint_source(
            "import datetime\nimport time\n", "src/repro/service/executor.py"
        )
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_waiver_suppresses(self):
        lint = _load_tool("lint_invariants")
        source = "import time  # lint: allow[obs-wall-clock]\n"
        assert lint.lint_source(source, "src/repro/obs/export.py") == []

    def test_obs_package_is_clean(self):
        lint = _load_tool("lint_invariants")
        package = Path(__file__).resolve().parent.parent / "src" / "repro" / "obs"
        assert lint.collect_findings([package]) == []


# ---------------------------------------------------------------------
# Text renderers
# ---------------------------------------------------------------------
class TestRenderers:
    def test_lane_timeline_renders_tracks(self):
        frontend, _ = _run_service(observe=True)
        text = render_lane_timeline(frontend.obs.tracer)
        assert text.startswith("lane timeline:")
        for label in frontend.obs.tracer.tracks:
            assert label in text
        assert "█" in text and "%" in text

    def test_lane_timeline_empty(self):
        assert "no closed spans" in render_lane_timeline(Tracer())

    def test_span_tree_renders_depth_and_attrs(self):
        frontend, result = _run_service(observe=True)
        text = render_span_tree(result.completed()[0].trace)
        lines = text.splitlines()
        assert lines[0].startswith("request")
        assert any(line.startswith("  ") for line in lines)  # indented children
        assert "status=completed" in text
