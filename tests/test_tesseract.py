"""Tests for repro.tesseract (message runtime, performance model, baseline)."""

import numpy as np
import pytest

from repro.graph.algorithms import WorkProfile, pagerank
from repro.graph.generators import erdos_renyi, regular_grid, rmat
from repro.graph.partition import partition_graph
from repro.stacked.hmc import StackedMemorySystem
from repro.tesseract.baseline import ConventionalGraphSystem, ConventionalParameters
from repro.tesseract.core import PimCoreParameters
from repro.tesseract.message import RemoteCall, build_pagerank_runtime, pagerank_superstep
from repro.tesseract.runtime import TesseractParameters, TesseractSystem


class TestPimCoreParameters:
    def test_compute_time_and_energy(self):
        core = PimCoreParameters.tesseract()
        assert core.ops_per_second == pytest.approx(2e9)
        assert core.compute_time_ns(2e9) == pytest.approx(1e9)
        assert core.compute_energy_j(100) == pytest.approx(100 * core.dynamic_energy_per_op_j)
        with pytest.raises(ValueError):
            core.compute_time_ns(-1)


class TestMessagePassingRuntime:
    def test_pagerank_via_remote_calls_matches_reference(self):
        graph = regular_grid(6)  # no dangling vertices, undirected
        partition = partition_graph(graph, 4, vaults_per_cube=2, seed=1)
        runtime = build_pagerank_runtime(graph, partition)
        for _ in range(25):
            pagerank_superstep(runtime)
        reference, _ = pagerank(graph, max_iterations=25, tolerance=0.0)
        assert np.allclose(runtime.state["rank"], reference, atol=1e-6)

    def test_message_counts_match_partition_statistics(self):
        graph = rmat(9, avg_degree=6, seed=4)
        partition = partition_graph(graph, 8, vaults_per_cube=4, seed=0)
        runtime = build_pagerank_runtime(graph, partition)
        stats = pagerank_superstep(runtime)
        assert stats.total == graph.num_edges
        assert stats.remote == partition.remote_edges
        assert stats.inter_cube == partition.inter_cube_remote_edges

    def test_unregistered_handler_raises(self):
        from repro.tesseract.message import MessageStats

        graph = regular_grid(2)
        partition = partition_graph(graph, 2, seed=0)
        runtime = build_pagerank_runtime(graph, partition)
        # Issue a call with an unknown handler directly and deliver it.
        runtime.remote_call(0, RemoteCall(0, "unknown", 1.0), MessageStats())
        with pytest.raises(KeyError):
            runtime.barrier()

    def test_state_registration_validation(self):
        graph = regular_grid(2)
        partition = partition_graph(graph, 2, seed=0)
        runtime = build_pagerank_runtime(graph, partition)
        with pytest.raises(ValueError):
            runtime.add_state("bad", np.zeros(3))


class TestTesseractPerformanceModel:
    @pytest.fixture(scope="class")
    def workload(self):
        # An un-skewed graph keeps the 512-vault load imbalance representative
        # of the paper's (much larger) real-world graphs; the R-MAT generator
        # at this small scale would concentrate a large fraction of all edges
        # in a single vault, which no partitioner can balance.
        graph = erdos_renyi(1 << 14, avg_degree=16, seed=2)
        partition = partition_graph(graph, 512, vaults_per_cube=32, strategy="degree_balanced")
        _, profile = pagerank(graph, max_iterations=5)
        return graph, partition, profile

    def test_execution_result_fields(self, workload):
        graph, partition, profile = workload
        system = TesseractSystem(StackedMemorySystem(num_stacks=16))
        result = system.execute(profile, partition)
        assert result.time_ns > 0
        assert result.energy_j > 0
        assert set(result.breakdown) == {"compute_ns", "local_memory_ns", "network_ns", "barrier_ns"}
        assert result.energy_breakdown["static_j"] > 0

    def test_partition_vault_count_must_match(self, workload):
        graph, partition, profile = workload
        system = TesseractSystem(StackedMemorySystem(num_stacks=8))  # 256 vaults != 512
        with pytest.raises(ValueError):
            system.execute(profile, partition)

    def test_tesseract_beats_conventional_baseline(self, workload):
        graph, partition, profile = workload
        scaled = profile.scaled(1024)
        tesseract = TesseractSystem(StackedMemorySystem(num_stacks=16))
        baseline = ConventionalGraphSystem()
        pim_result = tesseract.execute(scaled, partition)
        host_result = baseline.execute(graph, scaled, effective_num_vertices=graph.num_vertices * 1024)
        assert pim_result.speedup_over(host_result) > 5
        assert pim_result.energy_reduction_percent(host_result) > 70

    def test_remote_function_calls_beat_remote_reads(self, workload):
        graph, partition, profile = workload
        with_rfc = TesseractSystem(StackedMemorySystem(num_stacks=16))
        without_rfc = TesseractSystem(
            StackedMemorySystem(num_stacks=16), use_remote_function_calls=False
        )
        fast = with_rfc.execute(profile, partition)
        slow = without_rfc.execute(profile, partition)
        assert slow.time_ns > 1.3 * fast.time_ns
        assert slow.breakdown["compute_ns"] > 2 * fast.breakdown["compute_ns"]

    def test_more_cubes_do_not_slow_down(self, workload):
        graph, _, profile = workload
        small_partition = partition_graph(graph, 256, vaults_per_cube=32, strategy="degree_balanced")
        large_partition = partition_graph(graph, 512, vaults_per_cube=32, strategy="degree_balanced")
        small_system = TesseractSystem(StackedMemorySystem(num_stacks=8))
        large_system = TesseractSystem(StackedMemorySystem(num_stacks=16))
        small_result = small_system.execute(profile, small_partition)
        large_result = large_system.execute(profile, large_partition)
        assert large_result.time_ns <= small_result.time_ns * 1.05


class TestConventionalBaseline:
    def test_miss_rate_grows_with_graph_size(self):
        baseline = ConventionalGraphSystem()
        graph = rmat(12, avg_degree=4, seed=0)
        profile = WorkProfile("demo", vertex_state_bytes=16)
        small = baseline.vertex_state_miss_rate(graph, profile)
        large = baseline.vertex_state_miss_rate(graph, profile, effective_num_vertices=1 << 26)
        assert large > small
        assert 0.0 <= small <= 1.0

    def test_execute_memory_bound_for_graph_workloads(self):
        baseline = ConventionalGraphSystem()
        graph = rmat(12, avg_degree=8, seed=1)
        _, profile = pagerank(graph, max_iterations=3)
        result = baseline.execute(graph, profile, effective_num_vertices=1 << 25)
        assert result.breakdown["memory_ns"] >= result.breakdown["compute_ns"]
        assert result.time_ns == pytest.approx(
            max(result.breakdown["memory_ns"], result.breakdown["compute_ns"])
        )

    def test_parameters_preset(self):
        params = ConventionalParameters.ddr3_server()
        assert params.cores == 32
        assert params.memory_bandwidth_bytes_per_s == pytest.approx(102.4e9)
