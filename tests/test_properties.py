"""Property-based tests (hypothesis) for the core data structures.

These cover the invariants the rest of the stack silently relies on:
bit-exact behaviour of the in-DRAM operations, address-mapping bijectivity,
BitWeaving scan correctness for arbitrary codes and constants, and the
monotonicity of the analytical cost models.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.bitvector import BulkBitVector, mask_padding_bytes
from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.dram.address import CACHE_LINE_BYTES, AddressMapper
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.database.bitweaving import BitWeavingColumn
from repro.graph.graph import CsrGraph
from repro.hostsim.cpu import HostCpu


def _tiny_device() -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=2,
        subarrays_per_bank=2,
        rows_per_subarray=16,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


class TestAmbitFunctionalProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        op=st.sampled_from(["and", "or", "xor", "nand", "nor", "xnor"]),
        seed_a=st.integers(0, 2**16),
        seed_b=st.integers(0, 2**16),
        num_bits=st.integers(1, 900),
    )
    def test_binary_ops_match_numpy_reference(self, op, seed_a, seed_b, num_bits):
        engine = AmbitEngine(_tiny_device(), AmbitConfig(banks_parallel=2))
        a = engine.alloc_vector(num_bits).fill_random(seed=seed_a)
        b = engine.alloc_vector(num_bits).fill_random(seed=seed_b)
        out, _ = engine.execute(op, a, b, functional=True)
        reference = {
            "and": lambda: a.data & b.data,
            "or": lambda: a.data | b.data,
            "xor": lambda: a.data ^ b.data,
            "nand": lambda: ~(a.data & b.data),
            "nor": lambda: ~(a.data | b.data),
            "xnor": lambda: ~(a.data ^ b.data),
        }[op]().astype(np.uint8)
        # Compare the logical bits: complementing ops set the padding bits
        # of the raw reference, which the engine (correctly) masks out.
        reference_bits = np.unpackbits(reference, bitorder="little")[:num_bits]
        assert np.array_equal(out.to_bits(), reference_bits)
        assert np.array_equal(out.data, mask_padding_bytes(reference.copy(), num_bits))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), num_bits=st.integers(1, 900))
    def test_double_negation_is_identity(self, seed, num_bits):
        engine = AmbitEngine(_tiny_device(), AmbitConfig(banks_parallel=2))
        a = engine.alloc_vector(num_bits).fill_random(seed=seed)
        negated, _ = engine.execute("not", a, functional=True)
        restored, _ = engine.execute("not", negated, functional=True)
        assert np.array_equal(restored.data[: a.num_bytes], a.data[: a.num_bytes])

    @settings(max_examples=50, deadline=None)
    @given(
        num_bits=st.integers(1, 4096),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**16),
    )
    def test_count_ones_matches_unpacked_bits(self, num_bits, density, seed):
        vector = BulkBitVector(num_bits).fill_random(seed=seed, density=density)
        assert vector.count_ones() == int(vector.to_bits().sum())


class TestAddressMappingProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        line=st.integers(0, 10**6),
        policy=st.sampled_from(["row_interleaved", "bank_interleaved"]),
    )
    def test_encode_decode_roundtrip(self, line, policy):
        geometry = DramGeometry(
            channels=2,
            ranks_per_channel=1,
            banks_per_rank=4,
            subarrays_per_bank=4,
            rows_per_subarray=64,
            row_size_bytes=1024,
        )
        mapper = AddressMapper(geometry, policy)
        address = (line * CACHE_LINE_BYTES) % geometry.total_capacity_bytes
        address -= address % CACHE_LINE_BYTES
        coordinate = mapper.decode(address)
        assert mapper.encode(coordinate) == address


class TestBitWeavingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        num_bits=st.integers(1, 10),
        constant=st.integers(0, 1023),
        seed=st.integers(0, 2**16),
        rows=st.integers(1, 2000),
    )
    def test_comparisons_match_reference(self, num_bits, constant, seed, rows):
        constant = constant % (1 << num_bits)
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 1 << num_bits, size=rows)
        column = BitWeavingColumn(codes, num_bits)
        less, _ = column.scan_less_than(constant)
        assert np.array_equal(less, column.reference_scan(codes, lambda c: c < constant))
        equal, _ = column.scan_equal(constant)
        assert np.array_equal(equal, column.reference_scan(codes, lambda c: c == constant))
        less_equal, _ = column.scan_less_equal(constant)
        assert np.array_equal(
            less_equal, column.reference_scan(codes, lambda c: c <= constant)
        )


class TestCsrGraphProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        num_vertices=st.integers(1, 40),
        num_edges=st.integers(0, 200),
        seed=st.integers(0, 2**16),
    )
    def test_degree_sums_and_reverse_involution(self, num_vertices, num_edges, seed):
        rng = np.random.default_rng(seed)
        sources = rng.integers(0, num_vertices, size=num_edges)
        destinations = rng.integers(0, num_vertices, size=num_edges)
        graph = CsrGraph.from_arrays(num_vertices, sources, destinations)
        assert graph.out_degree().sum() == num_edges
        assert graph.in_degree().sum() == num_edges
        double_reverse = graph.reverse().reverse()
        assert np.array_equal(double_reverse.indptr, graph.indptr)
        assert sorted(double_reverse.indices.tolist()) == sorted(graph.indices.tolist())


class TestCostModelProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        small=st.integers(1, 1 << 20),
        factor=st.integers(2, 16),
        op=st.sampled_from(["not", "and", "or", "xor", "copy", "fill"]),
    )
    def test_cpu_cost_is_monotonic_in_size(self, small, factor, op):
        cpu = HostCpu()
        if op in ("copy", "fill"):
            first = cpu.bulk_copy(small) if op == "copy" else cpu.bulk_fill(small)
            second = cpu.bulk_copy(small * factor) if op == "copy" else cpu.bulk_fill(small * factor)
        else:
            first = cpu.bulk_bitwise(op, small)
            second = cpu.bulk_bitwise(op, small * factor)
        assert second.latency_ns >= first.latency_ns
        assert second.energy_j >= first.energy_j

    @settings(max_examples=40, deadline=None)
    @given(num_bits=st.integers(8, 1 << 22), banks=st.integers(1, 64))
    def test_ambit_throughput_scales_with_banks(self, num_bits, banks):
        engine = AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=banks))
        single = AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=1))
        assert engine.throughput_bytes_per_s("and") == pytest.approx(
            banks * single.throughput_bytes_per_s("and")
        )
