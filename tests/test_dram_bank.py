"""Tests for repro.dram.bank."""

import numpy as np
import pytest

from repro.dram.bank import Bank, BankState


@pytest.fixture
def bank() -> Bank:
    return Bank(subarrays=2, rows_per_subarray=8, row_size_bytes=64)


class TestAddressing:
    def test_rows_total(self, bank):
        assert bank.rows == 16

    def test_locate_maps_to_subarray_and_local_row(self, bank):
        subarray, local = bank.locate(9)
        assert subarray is bank.subarrays[1]
        assert local == 1

    def test_locate_out_of_range(self, bank):
        with pytest.raises(IndexError):
            bank.locate(16)

    def test_same_subarray(self, bank):
        assert bank.same_subarray(0, 7)
        assert not bank.same_subarray(7, 8)


class TestConventionalCommands:
    def test_activate_read_write_precharge_cycle(self, bank):
        data = np.arange(64, dtype=np.uint8)
        bank.write_row(3, data)
        bank.activate(3)
        assert bank.state is BankState.ACTIVE
        assert np.array_equal(bank.read(3, 0, 64), data)
        bank.write(3, 0, np.full(64, 9, dtype=np.uint8))
        bank.precharge()
        assert bank.state is BankState.PRECHARGED
        assert np.all(bank.read_row(3) == 9)

    def test_activate_while_active_rejected(self, bank):
        bank.activate(0)
        with pytest.raises(RuntimeError):
            bank.activate(1)

    def test_access_without_matching_open_row_rejected(self, bank):
        bank.activate(0)
        with pytest.raises(RuntimeError):
            bank.read(1, 0)

    def test_precharge_idempotent(self, bank):
        bank.precharge()
        bank.precharge()
        assert bank.state is BankState.PRECHARGED

    def test_counters(self, bank):
        bank.activate(0)
        bank.precharge()
        bank.activate(1)
        bank.precharge()
        assert bank.activations == 2
        assert bank.precharges == 2


class TestPimPrimitives:
    def test_aap_copies_row(self, bank):
        source = np.random.default_rng(0).integers(0, 256, 64).astype(np.uint8)
        bank.write_row(2, source)
        bank.aap(2, 5)
        assert np.array_equal(bank.read_row(5), source)
        assert bank.state is BankState.PRECHARGED

    def test_aap_across_subarrays_rejected(self, bank):
        with pytest.raises(ValueError):
            bank.aap(2, 10)

    def test_aap_with_open_row_rejected(self, bank):
        bank.activate(0)
        with pytest.raises(RuntimeError):
            bank.aap(1, 2)

    def test_tra_computes_majority_and_restores(self, bank):
        a = np.full(64, 0b1100, dtype=np.uint8)
        b = np.full(64, 0b1010, dtype=np.uint8)
        ones = np.full(64, 0xFF, dtype=np.uint8)
        bank.write_row(0, a)
        bank.write_row(1, b)
        bank.write_row(2, ones)
        result = bank.triple_row_activate(0, 1, 2)
        assert np.all(result == (0b1100 | 0b1010))  # majority with 1 == OR
        assert np.array_equal(bank.read_row(0), result)

    def test_tra_across_subarrays_rejected(self, bank):
        with pytest.raises(ValueError):
            bank.triple_row_activate(0, 1, 9)

    def test_tra_counts_one_activation(self, bank):
        bank.write_row(0, np.zeros(64, dtype=np.uint8))
        bank.write_row(1, np.zeros(64, dtype=np.uint8))
        bank.write_row(2, np.zeros(64, dtype=np.uint8))
        before = bank.activations
        bank.triple_row_activate(0, 1, 2)
        assert bank.activations == before + 1
