"""Tests for cross-batch per-bank lane pipelining.

The lane schedule replaces the batch-synchronous executor barrier, so the
load-bearing properties are:

* **bit-exactness** — pipelining only moves start times: results, charged
  per-request latencies, and energies are identical to the barrier
  schedule, across seeded mixed workloads, both execution paths, and both
  the service and the cluster tier;
* **dominance** — with identical batch composition, no request completes
  *later* under pipelining than under the barrier (under bank skew many
  complete strictly earlier);
* **host lane** — host-only bulk operations occupy the dedicated host
  lane rather than falsely contending with real bank-0 traffic;
* **accounting** — lane horizons, the device-busy union, and the
  cross-batch overlap metric stay internally consistent.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.cluster import ClusterFrontend, ShardRouter
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.service import (
    HOST_LANE,
    BatchExecutor,
    BatchPolicy,
    BitmapConjunctionRequest,
    BulkOpRequest,
    LaneSchedule,
    ScanRequest,
    ServiceFrontend,
)


def _device(banks: int = 4, rows_per_subarray: int = 32) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=rows_per_subarray,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine(banks: int = 4) -> AmbitEngine:
    return AmbitEngine(
        _device(banks), AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _frontend(pipeline: bool, banks: int = 4, **kwargs) -> ServiceFrontend:
    executor = BatchExecutor(engine=_engine(banks), pipeline=pipeline)
    return ServiceFrontend(executor=executor, **kwargs)


def _random_column(rng, num_bits: int = 6, rows: int = 200) -> BitWeavingColumn:
    return BitWeavingColumn(rng.integers(0, 1 << num_bits, size=rows), num_bits)


def _scan(column, kind="less_than", *constants) -> ScanRequest:
    if not constants:
        constants = (1 << (column.num_bits - 1),)
    return ScanRequest(column=column, kind=kind, constants=constants)


def _mixed_workload(rng, num_bits, rows, count):
    """Seeded skewed mix: scans over a few columns, one of them hot."""
    columns = [_random_column(rng, num_bits, rows) for _ in range(3)]
    kinds = ["less_than", "less_equal", "equal", "between"]
    requests = []
    for i in range(count):
        # Bank skew: half of the traffic hammers column 0's banks.
        column = columns[0] if i % 2 == 0 else columns[1 + i % 2]
        kind = kinds[i % len(kinds)]
        constant = int(rng.integers(0, 1 << num_bits))
        if kind == "between":
            high = max(constant, (1 << num_bits) - 1)
            requests.append(_scan(column, kind, min(constant, high), high))
        else:
            requests.append(_scan(column, kind, constant))
    return requests


class TestLaneSchedule:
    def test_place_serializes_on_shared_lanes(self):
        lanes = LaneSchedule(["a", "b"])
        assert lanes.place(["a"], 10.0) == (0.0, 10.0)
        assert lanes.place(["b"], 4.0) == (0.0, 4.0)
        # Shares lane "a": queues behind its horizon.
        assert lanes.place(["a", "b"], 5.0) == (10.0, 15.0)
        assert lanes.horizon_ns() == 15.0
        assert lanes.ready_ns() == 15.0  # both bank lanes busy until 15

    def test_release_floor_and_lazy_lanes(self):
        lanes = LaneSchedule(["a"])
        start, finish = lanes.place(["a"], 3.0, release_ns=7.0)
        assert (start, finish) == (7.0, 10.0)
        # Unknown lanes (the host lane) are created lazily and never
        # gate dispatch readiness.
        lanes.place([HOST_LANE], 100.0, release_ns=0.0)
        assert lanes.lane_horizon_ns(HOST_LANE) == 100.0
        assert lanes.ready_ns() == 10.0

    def test_busy_union_merges_intervals(self):
        lanes = LaneSchedule(["a", "b", "c"])
        lanes.place(["a"], 10.0)             # [0, 10)
        lanes.place(["b"], 4.0, 2.0)         # [2, 6)  fully covered
        lanes.place(["c"], 10.0, 8.0)        # [8, 18) partial overlap
        assert lanes.busy_union_ns == pytest.approx(18.0)
        lanes.place(["b"], 5.0, 30.0)        # disjoint [30, 35)
        assert lanes.busy_union_ns == pytest.approx(23.0)

    def test_metrics_snapshot(self):
        lanes = LaneSchedule(["a", "b"])
        lanes.place(["a"], 10.0)
        lanes.place([HOST_LANE], 5.0)
        metrics = lanes.metrics("unit")
        assert metrics.lanes == 3
        assert metrics.span_ns == pytest.approx(10.0)
        assert metrics.per_lane_busy_ns["a"] == pytest.approx(10.0)
        assert metrics.per_lane_busy_ns[HOST_LANE] == pytest.approx(5.0)
        # Bank aggregates exclude the host lane: a busy, b idle.
        assert metrics.mean_bank_utilization == pytest.approx(0.5)
        assert metrics.bank_idle_fraction == pytest.approx(0.5)
        assert metrics.device_idle_fraction == pytest.approx(0.0)


class TestHostLane:
    def test_host_only_bulk_ops_take_the_host_lane(self):
        """A host-only bulk op must not contend with real bank traffic."""
        executor = BatchExecutor(engine=_engine())
        rng = np.random.default_rng(0)
        column = _random_column(rng)
        a = BulkBitVector(512).fill_random(seed=1)
        b = BulkBitVector(512).fill_random(seed=2)
        host_op = BulkOpRequest(op="and", a=a, b=b)
        assert executor.modeled_banks(host_op) == [HOST_LANE]
        batch = executor.run([_scan(column), host_op])
        scan_result, op_result = batch.results
        assert op_result.bank_ids == []
        # Disjoint lanes: the host op overlaps the scan completely
        # instead of serializing behind (or inflating) a bank's load.
        assert op_result.start_ns == pytest.approx(scan_result.start_ns)
        assert executor.lanes.lane_horizon_ns(HOST_LANE) == pytest.approx(
            op_result.metrics.latency_ns
        )

    def test_host_lane_serializes_host_work(self):
        executor = BatchExecutor(engine=_engine())
        ops = []
        for seed in range(3):
            a = BulkBitVector(512).fill_random(seed=seed)
            ops.append(BulkOpRequest(op="not", a=a))
        batch = executor.run(ops)
        starts = sorted(r.start_ns for r in batch.results)
        latency = batch.results[0].metrics.latency_ns
        assert starts[1] == pytest.approx(starts[0] + latency)
        assert starts[2] == pytest.approx(starts[1] + latency)

    def test_host_only_batch_dispatches_while_banks_busy(self):
        """A batch made entirely of host-only work gates on the host
        lane, not on a bank drain it will never use."""
        frontend = _frontend(pipeline=True, policy=BatchPolicy(max_batch=4))
        rng = np.random.default_rng(23)
        # Occupy every bank lane.
        for _ in range(4):
            frontend.offer(_scan(_random_column(rng)))
        frontend.serve_batch()
        bank_horizon = frontend.executor.ready_ns()
        assert bank_horizon > 0.0
        ops = [
            BulkOpRequest(op="not", a=BulkBitVector(512).fill_random(seed=s))
            for s in range(2)
        ]
        records = [frontend.offer(op) for op in ops]
        frontend.serve_batch()
        # Dispatched at the clock (host lane idle), not at the bank drain.
        assert all(r.start_ns < bank_horizon for r in records)
        assert min(r.start_ns for r in records) == pytest.approx(0.0)
        frontend.drain()

    def test_pinned_chains_still_serialize_on_banks(self):
        """Lowered conjunction steps keep their bank pinning (the host
        lane is only for unpinned host work)."""
        rng = np.random.default_rng(1)
        rows = 400
        table = ColumnTable("t", rows)
        table.add_column("region", rng.integers(0, 8, size=rows), cardinality=8)
        table.add_column("status", rng.integers(0, 4, size=rows), cardinality=4)
        index = BitmapIndex(table, ["region", "status"])
        frontend = _frontend(pipeline=True)
        record = frontend.offer(
            BitmapConjunctionRequest(
                index=index, predicates=(("region", (0, 1, 2, 3)), ("status", (0, 1)))
            )
        )
        frontend.drain()
        assert record.sojourn_ns == pytest.approx(record.metrics.latency_ns)


class TestPipelinedBitExactness:
    @settings(max_examples=12, deadline=None)
    @given(
        num_bits=st.integers(2, 6),
        rows=st.integers(16, 300),
        seed=st.integers(0, 2**16),
        count=st.integers(3, 12),
        functional=st.booleans(),
    )
    def test_service_tier_matches_barrier(self, num_bits, rows, seed, count, functional):
        """Acceptance: pipelined output == barrier output, same energy,
        across seeded mixed workloads on both execution paths."""
        outcomes = {}
        for pipeline in (True, False):
            rng = np.random.default_rng(seed)
            frontend = _frontend(
                pipeline,
                policy=BatchPolicy(max_batch=4),
                max_queue_depth=256,
                functional=functional,
            )
            requests = _mixed_workload(rng, num_bits, rows, count)
            records = [frontend.offer(r) for r in requests]
            frontend.drain()
            outcomes[pipeline] = records
        for pipelined, barrier in zip(outcomes[True], outcomes[False]):
            assert pipelined.completed and barrier.completed
            assert np.array_equal(pipelined.value, barrier.value)
            assert pipelined.metrics.latency_ns == pytest.approx(
                barrier.metrics.latency_ns
            )
            assert pipelined.metrics.energy_j == pytest.approx(barrier.metrics.energy_j)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        num_shards=st.integers(1, 3),
        functional=st.booleans(),
    )
    def test_cluster_tier_matches_barrier(self, seed, num_shards, functional):
        """Scans and scattered conjunctions stay bit-exact with ground
        truth in both dispatch modes across shard counts."""
        rng = np.random.default_rng(seed)
        rows = 256
        table = ColumnTable("t", rows)
        table.add_column("region", rng.integers(0, 8, size=rows), cardinality=8)
        table.add_column("status", rng.integers(0, 4, size=rows), cardinality=4)
        index = BitmapIndex(table, ["region", "status"])
        columns = [_random_column(rng) for _ in range(3)]
        conjunction = (("region", (1, 2)), ("status", (0, 1)))
        for pipeline in (True, False):
            cluster = ClusterFrontend(
                num_shards=num_shards,
                router=ShardRouter(num_shards),
                engine_factory=lambda: _engine(),
                policy=BatchPolicy(max_batch=3),
                pipeline=pipeline,
                functional=functional,
            )
            scan_records = [cluster.offer(_scan(c)) for c in columns]
            conj_record = cluster.offer(
                BitmapConjunctionRequest(index=index, predicates=conjunction)
            )
            cluster.drain()
            for column, record in zip(columns, scan_records):
                expected, _ = column.scan("less_than", 1 << (column.num_bits - 1))
                assert np.array_equal(record.value, expected)
            expected, _ = index.evaluate_conjunction(list(conjunction))
            assert np.array_equal(conj_record.value, expected)


class TestPipelinedDominance:
    def test_completion_never_later_than_barrier_under_skew(self):
        """With identical batches, pipelining can only move completions
        earlier: per-request finish times are never later than the
        barrier's, and under bank skew the makespan strictly shrinks."""
        outcomes = {}
        for pipeline in (True, False):
            rng = np.random.default_rng(7)
            frontend = _frontend(
                pipeline, policy=BatchPolicy(max_batch=3), max_queue_depth=256
            )
            requests = _mixed_workload(rng, num_bits=6, rows=220, count=12)
            records = [frontend.offer(r) for r in requests]
            frontend.drain()
            outcomes[pipeline] = (frontend, records)
        pipelined, barrier = outcomes[True][1], outcomes[False][1]
        for fast, slow in zip(pipelined, barrier):
            assert fast.finish_ns <= slow.finish_ns * (1 + 1e-9)
        fast_front, slow_front = outcomes[True][0], outcomes[False][0]
        assert fast_front.completion_ns < slow_front.completion_ns
        # Batch composition was identical (same admission order, same
        # policy), so the comparison is schedule-vs-schedule only.
        assert [r.batch_index for r in pipelined] == [r.batch_index for r in barrier]

    def test_cross_batch_overlap_is_observed_and_bounded(self):
        frontend = _frontend(pipeline=True, policy=BatchPolicy(max_batch=3))
        rng = np.random.default_rng(9)
        for request in _mixed_workload(rng, num_bits=6, rows=220, count=12):
            frontend.offer(request)
        frontend.drain()
        lanes = frontend.lane_metrics("skewed")
        assert lanes.batches == len(frontend.batches)
        assert lanes.cross_batch_overlap_ns > 0.0
        assert lanes.busy_union_ns <= lanes.span_ns * (1 + 1e-9)
        assert 0.0 <= lanes.bank_idle_fraction < 1.0
        # Frontend busy is the device-busy union, never the makespan sum.
        assert frontend.busy_ns == pytest.approx(lanes.busy_union_ns)
        serial = sum(b.metrics.serial_latency_ns for b in frontend.batches)
        assert frontend.busy_ns <= serial * (1 + 1e-9)

    def test_barrier_mode_keeps_batch_synchronous_clock(self):
        """pipeline=False preserves the legacy semantics: the clock rides
        each batch's makespan and no lane state is carried over."""
        frontend = _frontend(pipeline=False, policy=BatchPolicy(max_batch=2))
        rng = np.random.default_rng(11)
        column = _random_column(rng)
        for _ in range(4):
            frontend.offer(_scan(column))
        frontend.serve_batch()
        first_makespan = frontend.batches[0].metrics.latency_ns
        assert frontend.clock_ns == pytest.approx(first_makespan)
        assert frontend.executor.horizon_ns() == 0.0
        assert frontend.completion_ns == pytest.approx(frontend.clock_ns)
        frontend.drain()
        assert frontend.busy_ns == pytest.approx(
            sum(b.metrics.latency_ns for b in frontend.batches)
        )

    def test_admission_counts_inflight_lane_remainder(self):
        """A pipelined frontend keeps rejecting while dispatched work is
        still in flight: occupancy reads lane horizons, not just the
        queue."""
        rng = np.random.default_rng(13)
        column = _random_column(rng, num_bits=8, rows=400)
        executor = BatchExecutor(engine=_engine())
        per_request_ns = executor.modeled_latency_ns(_scan(column))
        frontend = ServiceFrontend(
            executor=executor,
            max_queue_depth=100,
            max_backlog_ns=2.5 * per_request_ns,
            policy=BatchPolicy(max_batch=2),
        )
        frontend.offer(_scan(column))
        frontend.offer(_scan(column))
        frontend.serve_batch()  # dispatched: queue empty, lanes busy
        assert frontend.queue_depth == 0
        blocked = frontend.offer(_scan(column))
        assert not blocked.admitted
        assert blocked.rejected_reason == "bank_occupancy"
        # Once the clock passes the lane horizon the same offer fits.
        late = frontend.offer(_scan(column), arrival_ns=frontend.completion_ns)
        assert late.admitted
        frontend.drain()


class TestGatherMergeTree:
    def test_four_way_gather_charges_log_depth(self):
        """A G-way gather costs ceil(log2(G)) pairwise-parallel merge
        levels, not a serial G-1 chain."""
        rng = np.random.default_rng(21)
        rows = 256
        table = ColumnTable("t", rows)
        for name, cardinality in (("a", 4), ("b", 4), ("c", 4), ("d", 4)):
            table.add_column(name, rng.integers(0, cardinality, size=rows), cardinality)
        index = BitmapIndex(table, ["a", "b", "c", "d"])
        cluster = ClusterFrontend(
            num_shards=4,
            router=ShardRouter(4, strategy="range"),
            engine_factory=lambda: _engine(),
        )
        cluster.router.register_names(index.indexed_columns())
        record = cluster.offer(
            BitmapConjunctionRequest(
                index=index,
                predicates=(("a", (0, 1)), ("b", (0, 1)), ("c", (0, 1)), ("d", (0, 1))),
            )
        )
        cluster.drain()
        assert record.completed and record.fanout == 4
        # Tree depth 2, not the serial 3 merges a chain would charge.
        assert record.host_merge_ns == pytest.approx(2 * cluster.merge_ns_per_op)
        assert record.finish_ns == pytest.approx(
            max(p.finish_ns for p in record.parts) + record.host_merge_ns
        )
        expected, _ = index.evaluate_conjunction(
            [("a", (0, 1)), ("b", (0, 1)), ("c", (0, 1)), ("d", (0, 1))]
        )
        assert np.array_equal(record.value, expected)
        # The op *count* is still the work performed (3 ANDs).
        assert cluster.result().metrics.merge_ops == 3


class TestDrainAndReuse:
    def test_drain_rides_out_the_lanes(self):
        frontend = _frontend(pipeline=True)
        rng = np.random.default_rng(15)
        records = [frontend.offer(_scan(_random_column(rng))) for _ in range(3)]
        frontend.drain()
        assert all(r.completed for r in records)
        assert frontend.clock_ns == pytest.approx(frontend.completion_ns)
        assert frontend.clock_ns >= max(r.finish_ns for r in records) - 1e-9
        # A reused frontend starts its next stream against idle lanes.
        follow_up = frontend.offer(_scan(_random_column(rng)))
        frontend.drain()
        assert follow_up.wait_ns == pytest.approx(0.0)

    def test_result_makespan_covers_inflight_work(self):
        frontend = _frontend(pipeline=True, policy=BatchPolicy(max_batch=2))
        rng = np.random.default_rng(17)
        for _ in range(2):
            frontend.offer(_scan(_random_column(rng)))
        frontend.serve_batch()
        metrics = frontend.result().metrics
        assert metrics.makespan_ns == pytest.approx(frontend.completion_ns)
        assert metrics.makespan_ns > frontend.clock_ns or math.isclose(
            frontend.clock_ns, frontend.completion_ns
        )

    def test_midstream_session_report_covers_inflight_window(self):
        """Regression: a mid-stream session report over a pipelined
        backend must not report a makespan shorter than its completed
        sojourns (the dispatch clock lags the lane horizons)."""
        from repro.api import PimSession

        frontend = _frontend(pipeline=True, policy=BatchPolicy(max_batch=4))
        session = PimSession(frontend)
        rng = np.random.default_rng(19)
        for _ in range(10):
            session.scan(_random_column(rng), "less_than", 9)
        frontend.serve_batch()
        frontend.serve_batch()
        report = session.report()  # 2 queued, 8 completed: mid-stream
        completed = [f.record for f in session.futures if f.record.completed]
        assert 0 < len(completed) < 10
        assert report.makespan_ns >= max(r.finish_ns for r in completed) - 1e-9
        assert report.makespan_ns >= report.busy_ns * (1 - 1e-9)
        session.drain()

    def test_lane_metrics_refused_on_barrier_executor(self):
        frontend = _frontend(pipeline=False)
        with pytest.raises(ValueError):
            frontend.lane_metrics()
