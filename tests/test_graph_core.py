"""Tests for repro.graph.graph and repro.graph.generators."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, regular_grid, rmat
from repro.graph.graph import CsrGraph


class TestCsrGraph:
    def test_from_edges_basic(self):
        graph = CsrGraph.from_edges(4, [(0, 1), (0, 2), (2, 3), (3, 0)])
        assert graph.num_vertices == 4
        assert graph.num_edges == 4
        assert sorted(graph.neighbors(0).tolist()) == [1, 2]
        assert graph.neighbors(1).tolist() == []
        assert graph.out_degree(0) == 2

    def test_from_arrays_matches_from_edges(self):
        edges = [(0, 1), (2, 1), (1, 3), (3, 3)]
        a = CsrGraph.from_edges(4, edges)
        b = CsrGraph.from_arrays(4, np.array([e[0] for e in edges]), np.array([e[1] for e in edges]))
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    def test_empty_graph(self):
        graph = CsrGraph.from_edges(3, [])
        assert graph.num_edges == 0
        assert graph.out_degree().tolist() == [0, 0, 0]

    def test_weights_follow_edges(self):
        graph = CsrGraph.from_edges(3, [(2, 0), (0, 1)], weights=[5.0, 7.0])
        assert graph.edge_weights(0).tolist() == [7.0]
        assert graph.edge_weights(2).tolist() == [5.0]

    def test_in_degree_and_edge_sources(self):
        graph = CsrGraph.from_edges(3, [(0, 1), (2, 1), (1, 2)])
        assert graph.in_degree().tolist() == [0, 2, 1]
        assert np.array_equal(graph.edge_sources(), np.array([0, 1, 2]))

    def test_reverse(self):
        graph = CsrGraph.from_edges(3, [(0, 1), (1, 2)])
        reverse = graph.reverse()
        assert reverse.neighbors(1).tolist() == [0]
        assert reverse.neighbors(2).tolist() == [1]
        assert reverse.num_edges == graph.num_edges

    def test_out_of_range_edges_rejected(self):
        with pytest.raises(ValueError):
            CsrGraph.from_edges(2, [(0, 5)])
        with pytest.raises(ValueError):
            CsrGraph.from_edges(2, [(-1, 0)])

    def test_invalid_csr_arrays_rejected(self):
        with pytest.raises(ValueError):
            CsrGraph(np.array([0, 2]), np.array([0]))  # indptr end mismatch
        with pytest.raises(ValueError):
            CsrGraph(np.array([1, 1]), np.array([], dtype=np.int64))  # indptr[0] != 0
        with pytest.raises(ValueError):
            CsrGraph(np.array([0, 1]), np.array([5]))  # destination out of range

    def test_neighbors_bounds_checked(self):
        graph = CsrGraph.from_edges(2, [(0, 1)])
        with pytest.raises(IndexError):
            graph.neighbors(2)

    def test_memory_footprint_and_describe(self):
        graph = CsrGraph.from_edges(10, [(0, 1)] * 5)
        assert graph.memory_footprint_bytes(16, 8) == 10 * 16 + 5 * 8
        assert "10 vertices" in graph.describe()


class TestGenerators:
    def test_rmat_size_and_determinism(self):
        graph = rmat(10, avg_degree=4, seed=5)
        assert graph.num_vertices == 1024
        assert graph.num_edges == 4096
        again = rmat(10, avg_degree=4, seed=5)
        assert np.array_equal(graph.indices, again.indices)

    def test_rmat_is_skewed(self):
        graph = rmat(12, avg_degree=8, seed=1)
        degrees = graph.out_degree()
        assert degrees.max() > 8 * degrees.mean()

    def test_rmat_invalid_parameters(self):
        with pytest.raises(ValueError):
            rmat(0)
        with pytest.raises(ValueError):
            rmat(8, avg_degree=0)
        with pytest.raises(ValueError):
            rmat(8, a=0.9, b=0.2, c=0.2)

    def test_erdos_renyi_is_not_skewed(self):
        graph = erdos_renyi(4096, avg_degree=8, seed=2)
        degrees = graph.out_degree()
        assert degrees.max() < 5 * degrees.mean()
        with pytest.raises(ValueError):
            erdos_renyi(0)

    def test_regular_grid_degrees(self):
        graph = regular_grid(4)
        degrees = graph.out_degree()
        # Corners have 2 neighbours, edges 3, interior 4.
        assert degrees.min() == 2
        assert degrees.max() == 4
        assert graph.num_edges == 2 * 2 * 4 * 3  # 24 undirected edges, both directions
        with pytest.raises(ValueError):
            regular_grid(0)
