"""Shared pytest fixtures.

The fixtures provide deliberately *small* device configurations so that the
functional paths (real bytes moving through simulated banks) stay fast even
when exercised by hundreds of tests; the analytical paths are configuration
independent and are tested against the full-size presets directly.
"""

from __future__ import annotations

import pytest

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters


@pytest.fixture
def small_geometry() -> DramGeometry:
    """A tiny DRAM organization for functional tests (2 banks, 64 B rows)."""
    return DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=2,
        subarrays_per_bank=2,
        rows_per_subarray=32,
        row_size_bytes=64,
    )


@pytest.fixture
def small_device(small_geometry) -> DramDevice:
    """A functional DRAM device built on the tiny geometry."""
    return DramDevice(
        small_geometry,
        DramTimingParameters.ddr3_1600(),
        DramEnergyParameters.ddr3_1600(),
    )


@pytest.fixture
def small_ambit(small_device) -> AmbitEngine:
    """An Ambit engine bound to the tiny functional device."""
    return AmbitEngine(small_device, AmbitConfig(banks_parallel=2))


@pytest.fixture
def ddr3_device() -> DramDevice:
    """The full-size DDR3-1600 preset (used by analytical tests)."""
    return DramDevice.ddr3()
