"""Tests for the sharded multi-device cluster tier.

The load-bearing acceptance property: results served through the cluster
— scans routed to replicas, conjunctions scattered into shard-local
sub-chains and merged host-side — are bit-exact with single-device
execution, across shard counts, replication factors, and both execution
paths.  Around it: router placement/replication semantics, shard-view
locality, load-aware replica routing, all-or-nothing scatter admission,
and the ClusterMetrics roll-up.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.cluster import ClusterFrontend, ShardRouter
from repro.database.bitmap_index import BitmapIndex
from repro.database.sharding import BitmapIndexShardView, TableShardView
from repro.database.bitweaving import BitWeavingColumn
from repro.database.queries import QueryEngine, ScanBackend
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.service import (
    BatchPolicy,
    BitmapConjunctionRequest,
    ScanRequest,
    poisson_schedule,
    trace_schedule,
)


def _device(banks: int = 4, rows_per_subarray: int = 32) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=rows_per_subarray,
        row_size_bytes=64,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine_factory(banks: int = 4):
    return lambda: AmbitEngine(
        _device(banks), AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _cluster(num_shards: int, **kwargs) -> ClusterFrontend:
    kwargs.setdefault("engine_factory", _engine_factory())
    kwargs.setdefault("policy", BatchPolicy(max_batch=3))
    return ClusterFrontend(num_shards=num_shards, **kwargs)


def _random_column(rng, num_bits: int, rows: int) -> BitWeavingColumn:
    return BitWeavingColumn(rng.integers(0, 1 << num_bits, size=rows), num_bits)


def _bitmap_index(rng, rows: int = 400) -> BitmapIndex:
    table = ColumnTable("t", rows)
    table.add_column("region", rng.integers(0, 8, size=rows), cardinality=8)
    table.add_column("status", rng.integers(0, 4, size=rows), cardinality=4)
    table.add_column("tier", rng.integers(0, 3, size=rows), cardinality=3)
    return BitmapIndex(table, ["region", "status", "tier"])


class TestShardRouter:
    def test_hash_placement_is_deterministic_and_sticky(self):
        first = ShardRouter(4)
        second = ShardRouter(4)
        names = [f"col{i}" for i in range(12)]
        assert [first.replicas(n) for n in names] == [second.replicas(n) for n in names]
        homes = {n: first.replicas(n) for n in names}
        first.register_names(names)  # re-registration keeps homes
        assert {n: first.replicas(n) for n in names} == homes

    def test_range_placement_is_contiguous(self):
        router = ShardRouter(3, strategy="range")
        names = [f"c{i:02d}" for i in range(9)]
        router.register_names(names)
        homes = [router.replicas(n)[0] for n in sorted(names)]
        assert homes == sorted(homes)  # sorted names -> nondecreasing shards
        assert set(homes) == {0, 1, 2}

    def test_range_lazy_names_stay_spread(self):
        """Regression: names discovered one at a time on a range router
        must not all pile onto shard 0."""
        router = ShardRouter(4, strategy="range")
        homes = [router.replicas(f"c{i}")[0] for i in range(8)]
        assert set(homes) == {0, 1, 2, 3}

    def test_replication_factor_and_hot_columns(self):
        router = ShardRouter(4, replication_factor=3, hot_columns=["hot"])
        assert len(router.replicas("hot")) == 3
        assert len(router.replicas("cold")) == 1
        everywhere = ShardRouter(3, replication_factor=5)  # capped at num_shards
        assert sorted(everywhere.replicas("x")) == [0, 1, 2]

    def test_objects_place_round_robin(self):
        rng = np.random.default_rng(0)
        router = ShardRouter(3)
        columns = [_random_column(rng, 4, 50) for _ in range(6)]
        homes = [router.replicas(c)[0] for c in columns]
        assert homes == [0, 1, 2, 0, 1, 2]
        assert [router.replicas(c)[0] for c in columns] == homes  # sticky

    def test_route_picks_least_loaded_replica(self):
        router = ShardRouter(4, replication_factor=2, hot_columns=["hot"])
        replicas = router.replicas("hot")
        load = {shard: 0.0 for shard in range(4)}
        load[replicas[0]] = 100.0
        assert router.route("hot", lambda s: load[s]) == replicas[1]
        load[replicas[1]] = 200.0
        assert router.route("hot", lambda s: load[s]) == replicas[0]

    def test_assign_scatter_minimizes_fanout(self):
        router = ShardRouter(4, replication_factor=2)
        # Two keys with identical replica sets must land on one shard.
        twin = next(
            k
            for k in (f"k{i}" for i in range(64))
            if k != "a" and router.replicas(k) == router.replicas("a")
        )
        assignment = dict(router.assign_scatter(["a", twin], lambda s: 0.0))
        assert assignment["a"] == assignment[twin]
        # A later key reuses an already-chosen shard in its replica set even
        # when another of its replicas carries less load.
        first, second = router.replicas("a")
        load = {s: 0.0 for s in range(4)}
        load[first] = 5.0
        load[second] = 1.0  # "a" routes to `second`
        partial = next(
            k
            for k in (f"k{i}" for i in range(64))
            if second in router.replicas(k)
            and not set(router.replicas(k)) - {second} & set(router.replicas("a"))
        )
        other = next(s for s in router.replicas(partial) if s != second)
        load[other] = 0.0  # alone, `partial` would prefer `other`
        assignment = dict(router.assign_scatter(["a", partial], lambda s: load[s]))
        assert assignment["a"] == second
        assert assignment[partial] == second

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, replication_factor=0)
        with pytest.raises(ValueError):
            ShardRouter(2, strategy="random")


class TestShardViews:
    def test_index_view_is_zero_copy_and_local(self):
        rng = np.random.default_rng(1)
        index = _bitmap_index(rng)
        view = index.shard_view(["region"])
        assert view.num_rows == index.num_rows
        assert view.bitmap("region", 2) is index.bitmap("region", 2)
        with pytest.raises(KeyError):
            view.bitmap("status", 0)
        with pytest.raises(KeyError):
            view.lower_conjunction([("status", [0])])
        with pytest.raises(KeyError):
            BitmapIndexShardView(index, ["nope"])

    def test_view_storage_counts_only_local_columns(self):
        rng = np.random.default_rng(2)
        index = _bitmap_index(rng)
        views = [index.shard_view([c]) for c in index.indexed_columns()]
        assert sum(v.storage_bytes() for v in views) == index.storage_bytes()

    def test_view_lowering_matches_parent(self):
        rng = np.random.default_rng(3)
        index = _bitmap_index(rng)
        view = index.shard_view(["region", "status"])
        predicates = [("region", [1, 2]), ("status", [0, 1])]
        expected, plan = index.evaluate_conjunction(predicates)
        got, view_plan = view.evaluate_conjunction(predicates)
        assert np.array_equal(got, expected)
        assert view_plan.total_operations == plan.total_operations

    def test_table_view(self):
        table = ColumnTable("t", 10)
        table.add_column("a", np.arange(10), cardinality=10)
        table.add_column("b", np.zeros(10, dtype=int), cardinality=1)
        view = TableShardView(table, ["a"])
        assert view.num_rows == 10
        assert np.array_equal(view.column("a"), table.column("a"))
        with pytest.raises(KeyError):
            view.column("b")
        with pytest.raises(KeyError):
            TableShardView(table, ["c"])


class TestClusterBitExactness:
    @settings(max_examples=15, deadline=None)
    @given(
        num_shards=st.sampled_from([1, 2, 4]),
        replication=st.sampled_from([1, 2]),
        functional=st.booleans(),
        num_bits=st.integers(2, 6),
        rows=st.integers(20, 300),
        seed=st.integers(0, 2**16),
        constants=st.lists(st.integers(0, 63), min_size=1, max_size=4),
    )
    def test_cluster_matches_single_device(
        self, num_shards, replication, functional, num_bits, rows, seed, constants
    ):
        """Acceptance: sharded scatter-gather output == single-device output,
        across shard counts, replication factors, and both paths."""
        rng = np.random.default_rng(seed)
        columns = [_random_column(rng, num_bits, rows) for _ in range(3)]
        index = _bitmap_index(rng, rows=rows)
        kinds = ["less_than", "less_equal", "equal", "between"]
        requests = []
        for i, constant in enumerate(constants):
            constant %= 1 << num_bits
            kind = kinds[i % len(kinds)]
            column = columns[i % len(columns)]
            if kind == "between":
                high = max(constant, (1 << num_bits) - 1 - constant)
                requests.append(
                    ScanRequest(column=column, kind=kind, constants=(min(constant, high), high))
                )
            else:
                requests.append(ScanRequest(column=column, kind=kind, constants=(constant,)))
        conjunctions = [
            (("region", (1, 2, 3)), ("status", (0, 1)), ("tier", (0, 2))),
            (("region", (int(rng.integers(0, 8)),)), ("tier", (1,))),
        ]
        requests.extend(
            BitmapConjunctionRequest(index=index, predicates=c) for c in conjunctions
        )

        cluster = _cluster(
            num_shards,
            router=ShardRouter(num_shards, replication_factor=replication),
            functional=functional,
        )
        events = poisson_schedule(requests, rate_per_s=2e6, seed=seed)
        result = cluster.run(events)
        assert result.metrics.completed == len(requests)
        assert result.metrics.rejected == 0

        by_seq = {r.seq: r for r in result.records}
        for i, request in enumerate(requests):
            record = by_seq[i]
            if isinstance(request, ScanRequest):
                expected, _ = request.column.scan(request.kind, *request.constants)
                assert record.fanout == 1
            else:
                expected, _ = index.evaluate_conjunction(list(request.predicates))
            assert np.array_equal(record.value, expected)
        # Fan-out bookkeeping: host merges = sum of (parts - 1).
        assert result.metrics.merge_ops == sum(
            len(r.parts) - 1 for r in result.completed()
        )

    def test_cluster_agrees_with_pipeline_entry_points(self):
        """Cross-check against the single-device service entry points."""
        rng = np.random.default_rng(4)
        index = _bitmap_index(rng)
        conjunctions = [
            [("region", [1, 2]), ("status", [0]), ("tier", [0, 1])],
            [("region", [3]), ("status", [1, 2])],
        ]
        single_engine = QueryEngine(ambit=_engine_factory()())
        single = single_engine.bitmap_conjunction_query_batch(
            index, conjunctions, ScanBackend.AMBIT
        )
        cluster = _cluster(3)
        requests = [
            BitmapConjunctionRequest(
                index=index, predicates=tuple((c, tuple(v)) for c, v in p)
            )
            for p in conjunctions
        ]
        result = cluster.run(trace_schedule(requests, [0.0] * len(requests)))
        for record, query in zip(result.records, single.results):
            assert BitmapIndex.count(record.value, index.num_rows) == query.matching_rows


class TestClusterRoutingAndAdmission:
    def test_replicated_scans_route_to_least_loaded_replica(self):
        """A hot column's scans spread over its replicas instead of
        serializing on one shard."""
        rng = np.random.default_rng(5)
        column = _random_column(rng, 8, 400)
        cluster = _cluster(
            2, router=ShardRouter(2, replication_factor=2, hot_columns=[column])
        )
        records = [
            cluster.offer(ScanRequest(column=column, kind="less_than", constants=(c,)))
            for c in range(6)
        ]
        cluster.drain()
        shards_used = {r.shard_ids[0] for r in records}
        assert shards_used == {0, 1}
        # Unreplicated, the same column pins to one shard.
        pinned = _cluster(2, router=ShardRouter(2, replication_factor=1))
        pinned_records = [
            pinned.offer(ScanRequest(column=column, kind="less_than", constants=(c,)))
            for c in range(6)
        ]
        assert len({r.shard_ids[0] for r in pinned_records}) == 1

    def test_unpinned_work_rebalances_to_min_backlog_shard(self):
        rng = np.random.default_rng(6)
        cluster = _cluster(2)
        hot_column = _random_column(rng, 8, 400)
        hot_shard = cluster.router.replicas(hot_column)[0]
        for c in range(4):
            cluster.offer(ScanRequest(column=hot_column, kind="less_than", constants=(c,)))
        from repro.service import CopyRequest

        record = cluster.offer(CopyRequest(num_bytes=4096))
        assert record.shard_ids[0] == 1 - hot_shard
        cluster.drain()
        assert record.completed

    def test_scatter_admission_is_all_or_nothing(self):
        rng = np.random.default_rng(7)
        index = _bitmap_index(rng)
        # Place each indexed column on its own shard, then fill one shard's
        # queue: the scattered conjunction must be rejected everywhere.
        cluster = _cluster(3, max_queue_depth=2, router=ShardRouter(3, strategy="range"))
        cluster.router.register_names(index.indexed_columns())
        columns_by_shard = cluster.router.partition(index.indexed_columns())
        assert all(len(cols) == 1 for cols in columns_by_shard)
        full_shard = 2
        filler = [_random_column(rng, 6, 200) for _ in range(4)]
        for column in filler:
            cluster.shards[full_shard].offer(
                ScanRequest(column=column, kind="less_than", constants=(10,))
            )
        record = cluster.offer(
            BitmapConjunctionRequest(
                index=index,
                predicates=(("region", (1, 2)), ("status", (0, 1)), ("tier", (0, 1))),
            )
        )
        assert not record.admitted
        assert record.rejected_reason == "queue_full"
        # The siblings offered before the failure were withdrawn.
        cancelled = [p for p in record.parts if p.rejected_reason == "cancelled"]
        assert len(cancelled) == len(record.parts) - 1
        cluster.drain()
        result = cluster.result()
        assert result.metrics.rejected == 1
        assert result.metrics.completed == 0

    def test_cluster_metrics_rollup(self):
        rng = np.random.default_rng(8)
        cluster = _cluster(2)
        columns = [_random_column(rng, 6, 200) for _ in range(8)]
        requests = [
            ScanRequest(column=c, kind="less_than", constants=(12,)) for c in columns
        ]
        result = cluster.run(poisson_schedule(requests, rate_per_s=1e6, seed=8))
        m = result.metrics
        assert m.shards == 2
        assert m.offered == len(requests)
        assert m.admitted + m.rejected == m.offered
        assert m.completed == m.admitted
        assert len(m.per_shard) == 2
        assert sum(s.completed for s in m.per_shard) == m.completed
        assert m.makespan_ns == pytest.approx(
            max(s.makespan_ns for s in m.per_shard)
        )
        assert m.busy_ns == pytest.approx(sum(s.busy_ns for s in m.per_shard))
        assert len(m.utilization) == 2
        assert all(0.0 <= u <= 1.0 for u in m.utilization)
        assert m.imbalance >= 1.0
        assert m.cross_shard_fanout == pytest.approx(1.0)
        assert m.sojourn_p99_ns >= m.sojourn_p50_ns > 0.0
        for record in result.completed():
            assert record.wait_ns >= 0.0
            assert record.sojourn_ns >= record.wait_ns
        # Serial latency/energy roll up from the completed records.
        assert m.energy_j == pytest.approx(
            sum(r.metrics.energy_j for r in result.completed())
        )

    def test_single_shard_cluster_matches_plain_frontend(self):
        """A 1-shard cluster is the single-device pipeline with extra
        bookkeeping: identical values, waits, and sojourns."""
        from repro.service import BatchExecutor, ServiceFrontend

        rng = np.random.default_rng(9)
        columns = [_random_column(rng, 6, 200) for _ in range(5)]
        make_requests = lambda: [
            ScanRequest(column=c, kind="less_equal", constants=(9,)) for c in columns
        ]
        plain = ServiceFrontend(
            executor=BatchExecutor(engine=_engine_factory()()),
            policy=BatchPolicy(max_batch=3),
        )
        plain_result = plain.run(poisson_schedule(make_requests(), rate_per_s=1e6, seed=2))
        cluster = _cluster(1)
        cluster_result = cluster.run(
            poisson_schedule(make_requests(), rate_per_s=1e6, seed=2)
        )
        assert cluster_result.metrics.completed == plain_result.metrics.completed
        for plain_record, record in zip(plain_result.records, cluster_result.records):
            assert np.array_equal(record.value, plain_record.value)
            assert record.wait_ns == pytest.approx(plain_record.wait_ns)
            assert record.sojourn_ns == pytest.approx(plain_record.sojourn_ns)

    def test_deadline_misses_roll_up(self):
        rng = np.random.default_rng(10)
        cluster = _cluster(2)
        column = _random_column(rng, 8, 400)
        impossible = cluster.offer(
            ScanRequest(column=column, kind="less_than", constants=(3,)), deadline_ns=1.0
        )
        generous = cluster.offer(
            ScanRequest(
                column=_random_column(rng, 8, 400), kind="less_than", constants=(3,)
            ),
            deadline_ns=1e12,
        )
        cluster.drain()
        result = cluster.result()
        assert impossible.deadline_missed
        assert not generous.deadline_missed
        assert result.metrics.deadline_misses == 1
