"""Tests for repro.stacked (vault, logic layer, network, hmc)."""

import pytest

from repro.stacked.hmc import HmcParameters, HmcStack, StackedMemorySystem
from repro.stacked.logic_layer import ComputeSiteKind, LogicLayerBudget, PimComputeSite
from repro.stacked.network import InterconnectParameters, StackNetwork
from repro.stacked.vault import Vault, VaultParameters


class TestVault:
    def test_transfer_time_and_energy(self):
        vault = Vault(0)
        assert vault.transfer_time_ns(16_000_000_000) == pytest.approx(1e9)
        assert vault.transfer_energy_j(1000) > 0
        with pytest.raises(ValueError):
            vault.transfer_time_ns(-1)
        with pytest.raises(ValueError):
            vault.transfer_energy_j(-1)

    def test_access_recording(self):
        vault = Vault(3)
        vault.record_access(100)
        vault.record_access(50, is_write=True)
        assert vault.bytes_read == 100
        assert vault.bytes_written == 50
        assert vault.bytes_total == 150
        with pytest.raises(ValueError):
            vault.record_access(-1)

    def test_functional_dram_is_optional(self):
        assert Vault(0).dram is None
        assert Vault(0, with_functional_dram=True).dram is not None

    def test_tsv_energy_per_byte(self):
        params = VaultParameters(tsv_energy_pj_per_bit=4.0)
        assert params.tsv_energy_per_byte_j == pytest.approx(32e-12)


class TestLogicLayer:
    def test_budget_per_vault(self):
        budget = LogicLayerBudget(total_area_mm2=50.0, num_vaults=32)
        assert budget.area_per_vault_mm2 == pytest.approx(1.5625)

    def test_area_fractions_match_paper(self):
        budget = LogicLayerBudget()
        core = PimComputeSite.in_order_core()
        accel = PimComputeSite.fixed_function_accelerator()
        assert budget.area_fraction(core.area_mm2) == pytest.approx(0.094, abs=0.005)
        assert budget.area_fraction(accel.area_mm2) == pytest.approx(0.354, abs=0.01)
        assert core.fits(budget)
        assert accel.fits(budget)

    def test_negative_area_rejected(self):
        with pytest.raises(ValueError):
            LogicLayerBudget().area_fraction(-1.0)

    def test_compute_time_and_energy(self):
        core = PimComputeSite.in_order_core()
        assert core.compute_time_ns(2_000_000_000) == pytest.approx(1e9)
        assert core.compute_energy_j(1000) == pytest.approx(1000 * core.energy_per_op_j)
        with pytest.raises(ValueError):
            core.compute_time_ns(-1)

    def test_accelerator_is_more_efficient_per_op(self):
        core = PimComputeSite.in_order_core()
        accel = PimComputeSite.fixed_function_accelerator()
        assert accel.energy_per_op_j < core.energy_per_op_j
        assert accel.kind is ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR


class TestStackNetwork:
    def test_intra_vs_inter_cube_accounting(self):
        network = StackNetwork(num_cubes=4)
        network.add_messages(100, 16, crosses_cube=False)
        network.add_messages(100, 16, crosses_cube=True)
        assert network.intra_cube_bytes == 100 * 32
        assert network.inter_cube_bytes == 100 * 32
        assert network.inter_cube_time_ns() > network.intra_cube_time_ns()
        assert network.total_energy_j() > 0

    def test_reset(self):
        network = StackNetwork()
        network.add_messages(10, 64, crosses_cube=True)
        network.reset()
        assert network.total_time_ns() == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StackNetwork(num_cubes=0)
        with pytest.raises(ValueError):
            StackNetwork(average_inter_cube_hops=0.5)
        network = StackNetwork()
        with pytest.raises(ValueError):
            network.add_messages(-1, 8, crosses_cube=False)

    def test_aggregate_link_bandwidth(self):
        params = InterconnectParameters(inter_cube_link_bandwidth_bytes_per_s=40e9, links_per_cube=4)
        assert params.inter_cube_bandwidth_bytes_per_s == pytest.approx(160e9)


class TestHmcStack:
    def test_bandwidth_amplification(self):
        params = HmcParameters.hmc2()
        assert params.internal_bandwidth_bytes_per_s == pytest.approx(512e9)
        assert params.bandwidth_amplification == pytest.approx(1.6)

    def test_internal_stream_faster_than_external(self):
        stack = HmcStack()
        size = 1 << 30
        assert stack.internal_stream_time_ns(size) < stack.external_stream_time_ns(size)

    def test_transfer_energy_internal_cheaper_than_external(self):
        stack = HmcStack()
        size = 1 << 20
        assert stack.internal_transfer_energy_j(size) < stack.external_transfer_energy_j(size)

    def test_vault_for_address_interleaves(self):
        stack = HmcStack()
        first = stack.vault_for_address(0)
        second = stack.vault_for_address(256)
        assert first.index != second.index
        with pytest.raises(ValueError):
            stack.vault_for_address(stack.parameters.capacity_bytes)

    def test_negative_sizes_rejected(self):
        stack = HmcStack()
        with pytest.raises(ValueError):
            stack.internal_stream_time_ns(-1)
        with pytest.raises(ValueError):
            stack.external_transfer_energy_j(-1)


class TestStackedMemorySystem:
    def test_vault_counts(self):
        system = StackedMemorySystem(num_stacks=4)
        assert system.num_stacks == 4
        assert system.num_vaults == 4 * 32
        assert len(system.all_vaults()) == system.num_vaults

    def test_total_internal_bandwidth(self):
        system = StackedMemorySystem(num_stacks=16)
        assert system.total_internal_bandwidth_bytes_per_s == pytest.approx(16 * 512e9)

    def test_vault_location(self):
        system = StackedMemorySystem(num_stacks=2)
        assert system.vault_location(0) == (0, 0)
        assert system.vault_location(33) == (1, 1)
        with pytest.raises(IndexError):
            system.vault_location(64)

    def test_invalid_stack_count(self):
        with pytest.raises(ValueError):
            StackedMemorySystem(num_stacks=0)
