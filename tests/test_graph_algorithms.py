"""Tests for repro.graph.algorithms and repro.graph.partition."""

import numpy as np
import pytest

from repro.graph.algorithms import (
    WorkProfile,
    average_teenage_follower,
    breadth_first_search,
    pagerank,
    single_source_shortest_paths,
    weakly_connected_components,
)
from repro.graph.generators import regular_grid, rmat
from repro.graph.graph import CsrGraph
from repro.graph.partition import partition_graph


@pytest.fixture
def small_graph() -> CsrGraph:
    #     0 -> 1 -> 2
    #     |         ^
    #     v         |
    #     3 --------+
    return CsrGraph.from_edges(5, [(0, 1), (1, 2), (0, 3), (3, 2)])


class TestWorkProfile:
    def test_record_and_totals(self):
        profile = WorkProfile("demo")
        profile.record(10, 100)
        profile.record(5, 50)
        assert profile.iterations == 2
        assert profile.total_edges_traversed == 150
        assert profile.total_active_vertices == 15

    def test_scaled(self):
        profile = WorkProfile("demo", vertex_state_bytes=16, ops_per_edge=3)
        profile.record(10, 100)
        scaled = profile.scaled(4)
        assert scaled.traversed_edges == [400]
        assert scaled.active_vertices == [40]
        assert scaled.vertex_state_bytes == 16
        with pytest.raises(ValueError):
            profile.scaled(0)


class TestPageRank:
    def test_ranks_sum_to_one(self):
        graph = rmat(10, avg_degree=8, seed=3)
        ranks, profile = pagerank(graph, max_iterations=30)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-6)
        assert profile.iterations <= 30

    def test_hub_has_higher_rank(self):
        # Star graph: everything points to vertex 0.
        graph = CsrGraph.from_edges(5, [(i, 0) for i in range(1, 5)])
        ranks, _ = pagerank(graph)
        assert ranks[0] == max(ranks)

    def test_work_profile_counts_all_edges_every_iteration(self):
        graph = rmat(8, avg_degree=4, seed=0)
        _, profile = pagerank(graph, max_iterations=5)
        assert all(edges == graph.num_edges for edges in profile.traversed_edges)

    def test_invalid_damping(self):
        graph = regular_grid(3)
        with pytest.raises(ValueError):
            pagerank(graph, damping=1.5)


class TestBfsAndSssp:
    def test_bfs_levels(self, small_graph):
        levels, profile = breadth_first_search(small_graph, source=0)
        assert levels[0] == 0
        assert levels[1] == 1
        assert levels[3] == 1
        assert levels[2] == 2
        assert levels[4] == -1  # unreachable
        assert profile.iterations == 3

    def test_bfs_default_source_is_highest_degree(self):
        graph = CsrGraph.from_edges(4, [(2, 0), (2, 1), (2, 3), (0, 1)])
        levels, _ = breadth_first_search(graph)
        assert levels[2] == 0

    def test_bfs_grid_levels_are_manhattan_distance(self):
        side = 5
        graph = regular_grid(side)
        levels, _ = breadth_first_search(graph, source=0)
        for row in range(side):
            for column in range(side):
                assert levels[row * side + column] == row + column

    def test_bfs_source_bounds(self, small_graph):
        with pytest.raises(IndexError):
            breadth_first_search(small_graph, source=99)

    def test_sssp_matches_bfs_on_unit_weights(self):
        graph = regular_grid(6)
        levels, _ = breadth_first_search(graph, source=0)
        distances, _ = single_source_shortest_paths(graph, source=0)
        assert np.array_equal(levels[levels >= 0], distances[np.isfinite(distances)].astype(int))

    def test_sssp_respects_weights(self):
        graph = CsrGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)], weights=[1.0, 1.0, 5.0])
        distances, _ = single_source_shortest_paths(graph, source=0)
        assert distances[2] == pytest.approx(2.0)

    def test_sssp_unreachable_is_inf(self, small_graph):
        distances, _ = single_source_shortest_paths(small_graph, source=0)
        assert np.isinf(distances[4])


class TestWccAndAtf:
    def test_wcc_two_components(self):
        graph = CsrGraph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        labels, _ = weakly_connected_components(graph)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0], labels[3])

    def test_wcc_direction_does_not_matter(self):
        forward = CsrGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        labels, _ = weakly_connected_components(forward)
        assert len(set(labels.tolist())) == 1

    def test_atf_counts_teen_followers(self):
        # Vertices 1 and 2 follow vertex 0; only vertex 1 is a teenager.
        graph = CsrGraph.from_edges(3, [(1, 0), (2, 0)])
        mask = np.array([False, True, False])
        average, profile = average_teenage_follower(graph, teenage_mask=mask)
        assert average == pytest.approx(1.0 / 3.0)
        assert profile.iterations == 1

    def test_atf_mask_shape_checked(self):
        graph = regular_grid(2)
        with pytest.raises(ValueError):
            average_teenage_follower(graph, teenage_mask=np.array([True]))


class TestPartition:
    def test_hash_partition_balances_vertices(self):
        graph = rmat(12, avg_degree=8, seed=7)
        partition = partition_graph(graph, 16, vaults_per_cube=4, seed=0)
        assert partition.vertex_counts.sum() == graph.num_vertices
        assert partition.edge_counts.sum() == graph.num_edges
        assert partition.local_edges + partition.remote_edges == graph.num_edges
        # With 16 random partitions, ~15/16 of edges should be remote.
        assert 0.85 < partition.remote_fraction < 0.99

    def test_range_partition_on_grid_has_more_locality_than_hash(self):
        graph = regular_grid(32)
        hashed = partition_graph(graph, 8, strategy="hash", seed=1)
        ranged = partition_graph(graph, 8, strategy="range")
        assert ranged.remote_fraction < hashed.remote_fraction

    def test_degree_balanced_reduces_imbalance(self):
        graph = rmat(12, avg_degree=8, seed=7)
        hashed = partition_graph(graph, 32, strategy="hash", seed=0)
        balanced = partition_graph(graph, 32, strategy="degree_balanced")
        assert balanced.load_imbalance <= hashed.load_imbalance

    def test_inter_cube_split_consistent(self):
        graph = rmat(10, avg_degree=8, seed=2)
        partition = partition_graph(graph, 64, vaults_per_cube=32, seed=3)
        assert (
            partition.intra_cube_remote_edges + partition.inter_cube_remote_edges
            == partition.remote_edges
        )

    def test_single_vault_partition_is_all_local(self):
        graph = rmat(8, avg_degree=4, seed=1)
        partition = partition_graph(graph, 1)
        assert partition.remote_fraction == 0.0
        assert partition.load_imbalance == pytest.approx(1.0)

    def test_invalid_arguments(self):
        graph = regular_grid(3)
        with pytest.raises(ValueError):
            partition_graph(graph, 0)
        with pytest.raises(ValueError):
            partition_graph(graph, 4, vaults_per_cube=0)
        with pytest.raises(ValueError):
            partition_graph(graph, 4, strategy="metis")
