"""Tests for repro.dram.refresh."""

import pytest

from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import DramTimingParameters


class TestRefreshOverhead:
    def test_time_fraction_matches_trfc_over_trefi(self):
        scheduler = RefreshScheduler()
        overhead = scheduler.overhead()
        timing = scheduler.timing
        assert overhead.time_fraction == pytest.approx(timing.t_rfc_ns / timing.t_refi_ns)
        # DDR3 refresh costs a few percent of time, not more.
        assert 0.01 < overhead.time_fraction < 0.08

    def test_commands_per_second(self):
        scheduler = RefreshScheduler()
        overhead = scheduler.overhead()
        assert overhead.commands_per_second == pytest.approx(1e9 / scheduler.timing.t_refi_ns)

    def test_power_and_bandwidth_loss_positive(self):
        overhead = RefreshScheduler().overhead()
        assert overhead.power_w > 0
        assert overhead.bandwidth_loss_bytes_per_s > 0

    def test_available_fraction_complements_overhead(self):
        scheduler = RefreshScheduler()
        assert scheduler.available_time_fraction() == pytest.approx(
            1.0 - scheduler.overhead().time_fraction
        )

    def test_streaming_efficiency_assumption_is_consistent(self):
        """The controller's streaming model assumes ~15-30% of peak bandwidth
        is lost to refresh, turnarounds, and misses; refresh alone must be a
        small part of that."""
        scheduler = RefreshScheduler()
        assert scheduler.overhead().time_fraction < 0.15

    def test_refresh_energy_per_second(self):
        scheduler = RefreshScheduler()
        assert scheduler.refresh_energy_per_second_j() == pytest.approx(
            scheduler.overhead().power_w
        )


class TestPostponement:
    def test_aap_burst_length_before_refresh(self):
        scheduler = RefreshScheduler()
        aap_ns = scheduler.timing.aap_ns
        burst = scheduler.max_postponed_operations(aap_ns)
        # Eight tREFI windows of ~7.8 us each fit hundreds of ~84 ns AAPs.
        assert 400 < burst < 2000

    def test_zero_postponement_allows_one_window(self):
        scheduler = RefreshScheduler()
        assert scheduler.max_postponed_operations(scheduler.timing.t_refi_ns, 0) == 0

    def test_validation(self):
        scheduler = RefreshScheduler()
        with pytest.raises(ValueError):
            scheduler.max_postponed_operations(0)
        with pytest.raises(ValueError):
            scheduler.max_postponed_operations(10.0, -1)

    def test_ddr4_refresh_costlier_than_ddr3(self):
        ddr3 = RefreshScheduler(timing=DramTimingParameters.ddr3_1600())
        ddr4 = RefreshScheduler(timing=DramTimingParameters.ddr4_2400())
        assert ddr4.overhead().time_fraction > ddr3.overhead().time_fraction
