"""Tests for the batch plan optimizer (cross-request CSE, sub-chain
splitting, horizon-priced urgency).

The optimizer rewrites closed batches between planner and executor, so
the load-bearing properties are:

* **bit-exactness** — optimized lowering computes the identical result
  bitmaps as per-request lowering and host evaluation, across seeded
  repetition-heavy workloads, every optimizer knob combination, both
  pipeline modes, and both the service and the cluster tier, all under
  ``sanitize=True``;
* **the cost ledger balances** — ``ops_eliminated`` is exactly the
  unoptimized plan total net of owned steps and host joins, per request
  and in every roll-up (envelope, batch, queue metrics, session report);
* **the DAG is certifiable** — the extended plan linter accepts every
  optimizer-built batch and rejects hand-built DAGs with dangling shared
  outputs, double-consumed steps, cycles, or drifted cost ledgers;
* **dependency-aware scheduling** — lowered steps carrying ``after``
  never start before their producers finish, even across lanes;
* **horizon urgency** — deadline closing priced off lane busy horizons
  dispatches an endangered request in time where "now"-priced urgency
  misses it under deep pipelining.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.api.session import PimSession
from repro.cluster import ClusterFrontend, ShardRouter
from repro.database.bitmap_index import BitmapIndex
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.optimizer import BatchOptimizer, OptimizerConfig, canonical_key, predicate_key
from repro.service import (
    ArrivalEvent,
    BatchExecutor,
    BatchPolicy,
    BitmapConjunctionRequest,
    BulkOpRequest,
    ServiceFrontend,
)
from repro.service.requests import QueuedRequest
from repro.verify import (
    ChainCycleError,
    CostModelMismatchError,
    DanglingOperandError,
    OptimizedRequestView,
    lint_optimized_batch,
)

ROWS = 500
ROW_SIZE = 64


def _device(banks: int = 4) -> DramDevice:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        subarrays_per_bank=2,
        rows_per_subarray=32,
        row_size_bytes=ROW_SIZE,
    )
    return DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )


def _engine(banks: int = 4) -> AmbitEngine:
    return AmbitEngine(
        _device(banks), AmbitConfig(banks_parallel=banks, vectorized_functional=True)
    )


def _build_index(seed: int = 3) -> BitmapIndex:
    rng = np.random.default_rng(seed)
    table = ColumnTable("orders", ROWS)
    table.add_column("region", rng.integers(0, 8, size=ROWS), cardinality=8)
    table.add_column("status", rng.integers(0, 4, size=ROWS), cardinality=4)
    table.add_column("channel", rng.integers(0, 4, size=ROWS), cardinality=4)
    return BitmapIndex(table, ["region", "status", "channel"])


INDEX = _build_index()

#: Conjunction templates covering reorderings (0 and 1 are the same
#: conjunction), value-permuted predicates, a wide 3-column shape, and a
#: single-bitmap identity.
TEMPLATES = [
    (("region", (1, 2)), ("status", (0,))),
    (("status", (0,)), ("region", (2, 1))),
    (("region", (3, 0, 5)), ("status", (1, 2)), ("channel", (0,))),
    (("channel", (1,)),),
    (("region", (1, 2)), ("channel", (0, 2)), ("status", (0,))),
]


def _requests(draws):
    return [
        BitmapConjunctionRequest(index=INDEX, predicates=TEMPLATES[d]) for d in draws
    ]


def _serve(requests, optimize, pipeline=True, banks=4, max_batch=4, policy=None):
    frontend = ServiceFrontend(
        executor=BatchExecutor(engine=_engine(banks), pipeline=pipeline, sanitize=True),
        policy=policy or BatchPolicy(max_batch=max_batch, window_ns=None),
        max_queue_depth=1000,
        optimize=optimize,
    )
    for request in requests:
        frontend.offer(request)
    frontend.drain()
    return frontend, frontend.result()


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------
class TestCanonicalKeys:
    def test_predicate_key_sorts_the_value_multiset(self):
        assert predicate_key(INDEX, "region", (2, 1)) == predicate_key(
            INDEX, "region", (1, 2)
        )
        # The multiset is preserved: a duplicated value is not collapsed,
        # so the unoptimized cost model of the chain stays intact.
        assert predicate_key(INDEX, "region", (1, 1, 2)) != predicate_key(
            INDEX, "region", (1, 2)
        )

    def test_predicate_key_is_scoped_by_source(self):
        other = _build_index(seed=4)
        assert predicate_key(INDEX, "region", (1,)) != predicate_key(
            other, "region", (1,)
        )

    def test_commutative_ops_sort_operands(self):
        a = predicate_key(INDEX, "region", (1,))
        b = predicate_key(INDEX, "status", (0,))
        assert canonical_key("and", (a, b)) == canonical_key("and", (b, a))
        assert canonical_key("or", (a, b)) == canonical_key("or", (b, a))

    def test_fused_double_not_collapses(self):
        a = predicate_key(INDEX, "region", (1,))
        assert canonical_key("not", (canonical_key("not", (a,)),)) == a
        assert canonical_key("not", (a,)) != a


# ----------------------------------------------------------------------
# Property: optimized lowering is bit-exact on the service tier
# ----------------------------------------------------------------------
class TestBitExactness:
    @settings(max_examples=12, deadline=None)
    @given(
        draws=st.lists(st.integers(0, len(TEMPLATES) - 1), min_size=3, max_size=10),
        pipeline=st.booleans(),
        cse=st.booleans(),
        split=st.booleans(),
    )
    def test_service_tier_matches_unoptimized_and_host(
        self, draws, pipeline, cse, split
    ):
        requests = _requests(draws)
        config = OptimizerConfig(cse=cse, split_subchains=split)
        _, base = _serve(requests, optimize=False, pipeline=pipeline)
        _, opt = _serve(requests, optimize=config, pipeline=pipeline)
        assert base.metrics.completed == opt.metrics.completed == len(draws)
        for b, o in zip(base.completed(), opt.completed()):
            expected, _ = INDEX.evaluate_conjunction(list(b.request.predicates))
            assert np.array_equal(b.value, expected)
            assert np.array_equal(o.value, expected)
            assert o.ops_eliminated >= 0
            assert o.shared_subchains >= 0
        # Elimination only ever removes work, never adds it.
        assert opt.metrics.energy_j <= base.metrics.energy_j * (1 + 1e-9)

    @settings(max_examples=8, deadline=None)
    @given(
        draws=st.lists(st.integers(0, len(TEMPLATES) - 1), min_size=3, max_size=8),
        shards=st.integers(1, 3),
    )
    def test_cluster_tier_matches_host(self, draws, shards):
        cluster = ClusterFrontend(
            num_shards=shards,
            router=ShardRouter(shards),
            engine_factory=lambda: _engine(),
            policy=BatchPolicy(max_batch=3),
            max_queue_depth=1000,
            sanitize=True,
            optimize=True,
        )
        events = [
            ArrivalEvent(request=r, arrival_ns=float(i) * 50.0)
            for i, r in enumerate(_requests(draws))
        ]
        result = cluster.run(events, name="cluster")
        assert result.metrics.completed == len(draws)
        for record in result.completed():
            expected, _ = INDEX.evaluate_conjunction(list(record.request.predicates))
            assert np.array_equal(record.value, expected)
        assert result.metrics.ops_eliminated >= 0


# ----------------------------------------------------------------------
# CSE accounting
# ----------------------------------------------------------------------
class TestCseAccounting:
    def test_duplicate_requests_share_and_balance_the_ledger(self):
        # Two copies of the same conjunction (one value-permuted) plus a
        # distinct one, all in a single batch: the duplicates' chains run
        # once, the copies are charged zero device ops.
        requests = _requests([0, 1, 2])
        frontend, result = _serve(
            requests, optimize=OptimizerConfig(split_subchains=False), max_batch=4
        )
        first, copy, other = result.completed()
        plan_total = sum(len(v) - 1 for _, v in TEMPLATES[0]) + len(TEMPLATES[0]) - 1
        assert first.ops_eliminated == 0
        assert copy.ops_eliminated == plan_total
        assert copy.shared_subchains > 0
        assert result.metrics.ops_eliminated == plan_total
        assert result.metrics.shared_subchains == (
            copy.shared_subchains + other.shared_subchains
        )
        batch = frontend.batches[0]
        assert batch.metrics.ops_eliminated == plan_total
        assert batch.metrics.shared_subchains == result.metrics.shared_subchains
        # A fully shared request is attributed zero-cost metrics.
        assert copy.metrics.latency_ns == 0.0
        assert copy.metrics.energy_j == 0.0

    def test_optimizer_lint_accepts_its_own_batches(self):
        executor = BatchExecutor(engine=_engine(), sanitize=True)
        optimizer = BatchOptimizer(OptimizerConfig(split_subchains=False))
        optimizer.open_batch(executor)
        primitives = []
        for request in _requests([0, 1, 2]):
            optimizer.lower_conjunction(QueuedRequest(request=request), primitives)
        report = optimizer.lint_batch(row_size_bytes=ROW_SIZE)
        assert report.requests == 3
        assert report.steps == len(primitives)
        assert report.ops_eliminated > 0
        assert report.shared_steps > 0

    def test_sharing_never_crosses_batches(self):
        # Identical requests in *different* batches share nothing: the
        # CSE cache is batch-scoped (result vectors only live while their
        # batch executes).
        requests = _requests([0, 0])
        _, result = _serve(requests, optimize=True, max_batch=1)
        assert result.metrics.ops_eliminated == 0
        assert result.metrics.shared_subchains == 0

    def test_session_report_exposes_the_counters(self):
        session = PimSession(
            ServiceFrontend(
                executor=BatchExecutor(engine=_engine(), sanitize=True),
                policy=BatchPolicy(max_batch=4, window_ns=None),
                max_queue_depth=1000,
                optimize=True,
            ),
            name="optimizer_session",
        )
        events = [
            ArrivalEvent(request=r, arrival_ns=0.0) for r in _requests([0, 1, 0])
        ]
        session.submit_stream(events)
        session.drain()
        report = session.report()
        assert report.ops_eliminated > 0
        assert report.shared_subchains > 0
        assert report.host_merge_ns >= 0.0


# ----------------------------------------------------------------------
# Sub-chain splitting
# ----------------------------------------------------------------------
class TestSubchainSplitting:
    def test_split_overlaps_one_request_with_itself(self):
        # One wide conjunction, alone in its batch: unsplit it serializes
        # its whole chain on one bank set; split, its three predicate
        # sub-chains run on distinct lanes and host-join afterwards.
        request = _requests([2])[0]
        _, serial = _serve(
            [request], optimize=OptimizerConfig(cse=False, split_subchains=False)
        )
        _, split = _serve(
            [request], optimize=OptimizerConfig(cse=False, split_subchains=True)
        )
        (serial_q,) = serial.completed()
        (split_q,) = split.completed()
        expected, _ = INDEX.evaluate_conjunction(list(request.predicates))
        assert np.array_equal(split_q.value, expected)
        # Host joins are charged like the cluster gather tree: 3 parts
        # merge pairwise in ceil(log2(3)) = 2 levels.
        assert split_q.host_merge_ns == pytest.approx(2 * 250.0)
        assert serial_q.host_merge_ns == 0.0
        # The split request's in-service time beats the serialized chain
        # even after paying for the host merge.
        split_service = split_q.finish_ns - split_q.start_ns
        serial_service = serial_q.finish_ns - serial_q.start_ns
        assert split_service < serial_service

    def test_split_mode_unpins_conjunction_admission(self):
        frontend = ServiceFrontend(
            executor=BatchExecutor(engine=_engine(), sanitize=True),
            optimize=True,
        )
        assert frontend.planner.modeled_banks(_requests([0])[0]) == []
        unsplit = ServiceFrontend(
            executor=BatchExecutor(engine=_engine(), sanitize=True),
            optimize=OptimizerConfig(split_subchains=False),
        )
        assert unsplit.planner.modeled_banks(_requests([0])[0]) != []

    def test_max_split_lanes_bounds_the_fanout(self):
        with pytest.raises(ValueError):
            OptimizerConfig(max_split_lanes=0)
        with pytest.raises(ValueError):
            OptimizerConfig(merge_ns_per_op=-1.0)
        # max_split_lanes=1 degenerates to the stable offset: every
        # emitted step lands on one bank set.
        executor = BatchExecutor(engine=_engine(), sanitize=True)
        optimizer = BatchOptimizer(OptimizerConfig(cse=False, max_split_lanes=1))
        optimizer.open_batch(executor)
        primitives = []
        optimizer.lower_conjunction(
            QueuedRequest(request=_requests([2])[0]), primitives
        )
        offsets = {p.bank_offset for p in primitives}
        assert len(offsets) == 1


# ----------------------------------------------------------------------
# Dependency-aware executor scheduling
# ----------------------------------------------------------------------
class TestAfterDependencies:
    def _bulk(self, rng, after=(), offset=0):
        a = BulkBitVector(ROWS, ROW_SIZE)
        b = BulkBitVector(ROWS, ROW_SIZE)
        a.data[:] = rng.integers(0, 256, size=a.data.size, dtype=np.uint8)
        b.data[:] = rng.integers(0, 256, size=b.data.size, dtype=np.uint8)
        out = BulkBitVector(ROWS, ROW_SIZE)
        return BulkOpRequest(op="or", a=a, b=b, out=out, bank_offset=offset, after=after)

    def test_consumers_start_after_their_producers(self):
        rng = np.random.default_rng(0)
        executor = BatchExecutor(engine=_engine(), sanitize=True)
        producer = self._bulk(rng, offset=0)
        consumer = self._bulk(rng, after=(0,), offset=1)  # different lane
        batch = executor.run([producer, consumer])
        first, second = batch.results
        assert second.start_ns >= first.start_ns + first.metrics.latency_ns - 1e-9

    def test_forward_references_are_rejected(self):
        rng = np.random.default_rng(0)
        executor = BatchExecutor(engine=_engine(), sanitize=True)
        with pytest.raises(ValueError, match="earlier primitive"):
            executor.run([self._bulk(rng, after=(1,)), self._bulk(rng)])

    def test_deps_disable_lpt_reordering(self):
        rng = np.random.default_rng(0)
        executor = BatchExecutor(engine=_engine(), sanitize=True)
        # Without deps LPT would move the heavier second request first;
        # with a dep present, submission order is preserved.
        light = self._bulk(rng, offset=0)
        heavy = BulkOpRequest(
            op="or",
            a=BulkBitVector(4 * ROWS, ROW_SIZE),
            b=BulkBitVector(4 * ROWS, ROW_SIZE),
            out=BulkBitVector(4 * ROWS, ROW_SIZE),
            bank_offset=0,
            after=(0,),
        )
        batch = executor.run([light, heavy])
        first, second = batch.results
        assert first.request is light
        assert second.start_ns >= first.start_ns + first.metrics.latency_ns - 1e-9


# ----------------------------------------------------------------------
# Extended plan linter
# ----------------------------------------------------------------------
def _vec():
    return BulkBitVector(ROWS, ROW_SIZE)


def _view(**kwargs):
    defaults = dict(
        predicates=(("region", (1, 2)),),
        num_rows=ROWS,
        plan_total=1,
        own_indices=(0,),
        dep_indices=(),
        part_vectors=(),
        host_join_ops=0,
        ops_eliminated=0,
        shared_subchains=0,
    )
    defaults.update(kwargs)
    return OptimizedRequestView(**defaults)


class TestOptimizedBatchLint:
    def test_clean_shared_dag_passes(self):
        s1, s2 = _vec(), _vec()
        out = _vec()
        steps = {0: ("or", s1, s2, out)}
        owner = _view(part_vectors=(out,))
        sharer = _view(
            own_indices=(),
            dep_indices=(0,),
            part_vectors=(out,),
            ops_eliminated=1,
            shared_subchains=1,
        )
        report = lint_optimized_batch(steps, [owner, sharer], row_size_bytes=ROW_SIZE)
        assert report.steps == 1
        assert report.shared_steps == 1
        assert report.ops_eliminated == 1

    def test_dangling_shared_output_is_rejected(self):
        s1, s2 = _vec(), _vec()
        out = _vec()
        steps = {0: ("or", s1, s2, out)}
        owner = _view(part_vectors=(out,))
        dangling = _view(
            own_indices=(), dep_indices=(3,), part_vectors=(out,), ops_eliminated=1
        )
        with pytest.raises(DanglingOperandError, match="no request in the batch"):
            lint_optimized_batch(steps, [owner, dangling], row_size_bytes=ROW_SIZE)

    def test_double_consume_is_rejected(self):
        s1, s2 = _vec(), _vec()
        out = _vec()
        steps = {0: ("or", s1, s2, out)}
        double = _view(own_indices=(0,), dep_indices=(0,), part_vectors=(out,))
        with pytest.raises(DanglingOperandError, match="both owns and depends"):
            lint_optimized_batch(steps, [double], row_size_bytes=ROW_SIZE)

    def test_double_owned_step_is_rejected(self):
        s1, s2 = _vec(), _vec()
        out = _vec()
        steps = {0: ("or", s1, s2, out)}
        a = _view(part_vectors=(out,))
        b = _view(part_vectors=(out,), ops_eliminated=0)
        with pytest.raises(DanglingOperandError, match="owned by both"):
            lint_optimized_batch(steps, [a, b], row_size_bytes=ROW_SIZE)

    def test_unowned_steps_are_rejected(self):
        s1, s2 = _vec(), _vec()
        o1, o2 = _vec(), _vec()
        steps = {0: ("or", s1, s2, o1), 1: ("or", s1, s2, o2)}
        owner = _view(part_vectors=(o1,))
        with pytest.raises(DanglingOperandError, match="charged to no request"):
            lint_optimized_batch(steps, [owner], row_size_bytes=ROW_SIZE)

    def test_cross_request_cycles_are_rejected(self):
        s1, s2 = _vec(), _vec()
        o1, o2 = _vec(), _vec()
        # Step 0 consumes step 1's output: produced-before-consumed is
        # violated across the request boundary.
        steps = {0: ("or", o2, s1, o1), 1: ("or", s1, s2, o2)}
        a = _view(own_indices=(0,), dep_indices=(1,), part_vectors=(o1,), plan_total=1)
        b = _view(own_indices=(1,), part_vectors=(o2,))
        with pytest.raises(ChainCycleError, match="has not executed yet"):
            lint_optimized_batch(steps, [a, b], row_size_bytes=ROW_SIZE)

    def test_cost_ledger_drift_is_rejected(self):
        s1, s2 = _vec(), _vec()
        out = _vec()
        steps = {0: ("or", s1, s2, out)}
        drifted = _view(part_vectors=(out,), ops_eliminated=2)
        with pytest.raises(CostModelMismatchError, match="does not balance"):
            lint_optimized_batch(steps, [drifted], row_size_bytes=ROW_SIZE)

    def test_host_join_mismatch_is_rejected(self):
        s1, s2 = _vec(), _vec()
        out = _vec()
        steps = {0: ("or", s1, s2, out)}
        wrong = _view(part_vectors=(out,), host_join_ops=1)
        with pytest.raises(CostModelMismatchError, match="host"):
            lint_optimized_batch(steps, [wrong], row_size_bytes=ROW_SIZE)


# ----------------------------------------------------------------------
# Horizon-priced urgency
# ----------------------------------------------------------------------
class TestHorizonUrgency:
    def _arena(self, horizon_urgency):
        executor = BatchExecutor(engine=_engine(), pipeline=True, sanitize=True)
        # Preload bank 0's lanes: an in-flight chunk occupies them until H.
        heavy = BulkOpRequest(
            op="or",
            a=BulkBitVector(8 * ROW_SIZE * 8, ROW_SIZE),
            b=BulkBitVector(8 * ROW_SIZE * 8, ROW_SIZE),
            out=BulkBitVector(8 * ROW_SIZE * 8, ROW_SIZE),
            bank_offset=0,
        )
        executor.run([heavy])
        horizon = executor.ready_ns()
        assert horizon > 0.0
        slack = horizon / 4.0
        frontend = ServiceFrontend(
            executor=executor,
            policy=BatchPolicy(
                max_batch=8,
                window_ns=None,
                urgency_slack_ns=slack,
                horizon_urgency=horizon_urgency,
            ),
            max_queue_depth=100,
        )
        return frontend, horizon

    def _run_race(self, horizon_urgency):
        frontend, horizon = self._arena(horizon_urgency)
        rng = np.random.default_rng(1)

        def bulk(rows, offset):
            a = BulkBitVector(rows, ROW_SIZE)
            b = BulkBitVector(rows, ROW_SIZE)
            out = BulkBitVector(rows, ROW_SIZE)
            return BulkOpRequest(op="or", a=a, b=b, out=out, bank_offset=offset)

        urgent = bulk(ROWS, 0)
        modeled = frontend.planner.modeled_latency_ns(urgent)
        # The deadline is exactly savable: service must start the moment
        # the preloaded lane drains (latest viable start == the horizon).
        deadline = horizon + modeled
        competitor = bulk(ROWS * 8, 0)
        events = [
            ArrivalEvent(request=urgent, arrival_ns=0.0, deadline_ns=deadline),
            ArrivalEvent(request=competitor, arrival_ns=horizon / 8.0),
        ]
        result = frontend.run(events, name="urgency")
        return result.records[0]

    def test_horizon_urgency_saves_the_deadline(self):
        # Horizon-priced closing sees that the endangered request's lane
        # is busy until its latest viable start and dispatches it alone,
        # ahead of the heavier competitor: the deadline holds.
        record = self._run_race(horizon_urgency=True)
        assert record.completed
        assert not record.deadline_missed

    def test_now_priced_urgency_misses_it(self):
        # "Now"-priced urgency sleeps until deadline-minus-slack, by
        # which time the competitor has joined the batch and is LPT'd
        # ahead on the same lane: the deadline is missed.
        record = self._run_race(horizon_urgency=False)
        assert record.completed
        assert record.deadline_missed
