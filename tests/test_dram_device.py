"""Tests for repro.dram.device."""

import numpy as np
import pytest

from repro.dram.device import DramDevice


class TestFunctionalBulkAccess:
    def test_write_read_roundtrip(self, small_device):
        data = np.arange(256, dtype=np.uint8)
        small_device.write_bytes(0, data)
        result = small_device.read_bytes(0, 256)
        assert np.array_equal(result.data, data)

    def test_unaligned_access_rejected(self, small_device):
        with pytest.raises(ValueError):
            small_device.write_bytes(10, np.zeros(64, dtype=np.uint8))
        with pytest.raises(ValueError):
            small_device.read_bytes(10, 64)

    def test_partial_line_write_padded(self, small_device):
        small_device.write_bytes(0, np.full(10, 3, dtype=np.uint8))
        result = small_device.read_bytes(0, 10)
        assert np.all(result.data == 3)

    def test_read_negative_length_rejected(self, small_device):
        with pytest.raises(ValueError):
            small_device.read_bytes(0, -4)

    def test_latency_and_energy_reported(self, small_device):
        result = small_device.write_bytes(0, np.zeros(128, dtype=np.uint8))
        assert result.latency_ns > 0
        assert result.energy.total_j > 0


class TestPresetsAndHelpers:
    def test_ddr3_capacity(self):
        assert DramDevice.ddr3().capacity_bytes == 4 << 30

    def test_ddr4_has_more_bandwidth_than_ddr3(self):
        assert (
            DramDevice.ddr4().peak_bandwidth_bytes_per_s()
            > DramDevice.ddr3().peak_bandwidth_bytes_per_s()
        )

    def test_decode_returns_valid_coordinate(self, ddr3_device):
        coordinate = ddr3_device.decode(1 << 20)
        assert 0 <= coordinate.channel < ddr3_device.geometry.channels
        assert 0 <= coordinate.row < ddr3_device.geometry.rows_per_bank

    def test_bank_at_and_iter_banks(self, small_device):
        banks = dict(small_device.iter_banks())
        assert len(banks) == small_device.geometry.banks_total
        key = next(iter(banks))
        assert small_device.bank_at(*key) is banks[key]

    def test_analytical_shortcuts_delegate(self, ddr3_device):
        assert ddr3_device.stream_time_ns(1 << 20) > 0
        assert ddr3_device.stream_energy(1 << 20).total_j > 0
        assert ddr3_device.random_access_time_ns(100) > 0
        assert ddr3_device.random_access_energy(100).total_j > 0

    def test_hmc_vault_preset_row_size(self):
        assert DramDevice.hmc_vault().geometry.row_size_bytes == 1024
