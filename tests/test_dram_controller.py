"""Tests for repro.dram.controller."""

import numpy as np
import pytest

from repro.dram.controller import MemoryController, Request, RequestKind
from repro.dram.geometry import DramGeometry


@pytest.fixture
def controller(small_geometry) -> MemoryController:
    return MemoryController(small_geometry)


class TestFunctionalPath:
    def test_write_then_read_returns_data(self, controller):
        payload = np.arange(64, dtype=np.uint8)
        controller.submit(Request(RequestKind.WRITE, address=0, data=payload))
        controller.drain()
        read = Request(RequestKind.READ, address=0)
        controller.submit(read)
        controller.drain()
        assert np.array_equal(read.result, payload)

    def test_write_requires_64_bytes(self, controller):
        with pytest.raises(ValueError):
            controller.submit(Request(RequestKind.WRITE, address=0, data=np.zeros(8, dtype=np.uint8)))

    def test_row_hit_is_faster_than_row_miss(self):
        geometry = DramGeometry(
            channels=1,
            ranks_per_channel=1,
            banks_per_rank=2,
            subarrays_per_bank=2,
            rows_per_subarray=8,
            row_size_bytes=512,
        )
        controller = MemoryController(geometry)
        first = Request(RequestKind.READ, address=0)
        hit = Request(RequestKind.READ, address=64)  # next line of the same row
        controller.submit(first)
        controller.submit(hit)
        controller.drain()
        # Another row of the same bank forces a precharge + activate.
        row_stride = geometry.row_size_bytes * geometry.banks_per_rank
        miss = Request(RequestKind.READ, address=row_stride)
        controller.submit(miss)
        controller.drain()
        assert hit.row_hit is True
        assert miss.row_hit is False
        assert controller.stats.row_hits >= 1
        assert controller.stats.row_misses + controller.stats.row_closed >= 1
        assert hit.latency_ns < miss.latency_ns

    def test_latencies_are_positive_and_monotonic_time(self, controller):
        requests = [Request(RequestKind.READ, address=i * 64) for i in range(16)]
        for request in requests:
            controller.submit(request)
        controller.drain()
        completion_times = [r.completion_time_ns for r in requests]
        assert all(latency is not None and latency > 0 for latency in
                   (r.latency_ns for r in requests))
        assert controller.now_ns == pytest.approx(max(completion_times))

    def test_stats_energy_accumulates(self, controller):
        for i in range(8):
            controller.submit(Request(RequestKind.READ, address=i * 64))
        controller.drain()
        assert controller.stats.energy.total_j > 0
        assert controller.stats.reads == 8

    def test_row_hit_rate(self, controller):
        for i in range(8):
            controller.submit(Request(RequestKind.READ, address=i * 64))
        controller.drain()
        assert 0.0 <= controller.stats.row_hit_rate <= 1.0


class TestAnalyticalPath:
    def test_peak_bandwidth(self):
        controller = MemoryController(DramGeometry.ddr3_dimm())
        assert controller.peak_bandwidth_bytes_per_s() == pytest.approx(25.6e9)

    def test_stream_time_scales_linearly(self, controller):
        t1 = controller.stream_time_ns(1 << 20)
        t2 = controller.stream_time_ns(2 << 20)
        assert t2 == pytest.approx(2 * t1)

    def test_stream_time_efficiency_bounds(self, controller):
        with pytest.raises(ValueError):
            controller.stream_time_ns(1024, efficiency=0.0)
        with pytest.raises(ValueError):
            controller.stream_time_ns(1024, efficiency=1.5)
        with pytest.raises(ValueError):
            controller.stream_time_ns(-1)

    def test_stream_energy_components(self, controller):
        energy = controller.stream_energy(1 << 20)
        assert energy.activation_j > 0
        assert energy.read_j > 0
        assert energy.io_j > 0
        write_energy = controller.stream_energy(1 << 20, is_write=True)
        assert write_energy.write_j > 0
        assert write_energy.read_j == 0

    def test_random_access_slower_than_streaming(self):
        controller = MemoryController(DramGeometry.ddr3_dimm())
        num_bytes = 1 << 24
        stream = controller.stream_time_ns(num_bytes)
        random = controller.random_access_time_ns(num_bytes // 64)
        assert random > stream

    def test_random_access_energy_has_activation_per_access(self):
        controller = MemoryController(DramGeometry.ddr3_dimm())
        energy = controller.random_access_energy(1000)
        assert energy.activation_j == pytest.approx(
            1000 * controller.energy_params.activation_energy_j
        )

    def test_negative_counts_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.random_access_time_ns(-1)
        with pytest.raises(ValueError):
            controller.stream_energy(-5)
