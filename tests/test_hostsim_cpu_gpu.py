"""Tests for repro.hostsim.cpu, repro.hostsim.gpu, repro.hostsim.energy."""

import pytest

from repro.hostsim.cpu import CpuParameters, HostCpu, TRAFFIC_FACTORS
from repro.hostsim.energy import HostEnergyModel
from repro.hostsim.gpu import GpuParameters, HostGpu


class TestHostEnergyModel:
    def test_memory_byte_costs_more_than_cached_byte(self):
        model = HostEnergyModel.desktop()
        assert model.hierarchy_energy_per_byte_j(reaches_memory=True) > (
            model.hierarchy_energy_per_byte_j(reaches_memory=False)
        )

    def test_data_movement_energy(self):
        model = HostEnergyModel.desktop()
        assert model.data_movement_energy_j(1000, 500) > model.data_movement_energy_j(1000)
        with pytest.raises(ValueError):
            model.data_movement_energy_j(-1)

    def test_compute_energy(self):
        model = HostEnergyModel.desktop()
        assert model.compute_energy_j(scalar_ops=10) == pytest.approx(10 * model.core_op_energy_j)
        with pytest.raises(ValueError):
            model.compute_energy_j(scalar_ops=-1)

    def test_mobile_is_lower_power_than_desktop(self):
        assert HostEnergyModel.mobile().static_power_w < HostEnergyModel.desktop().static_power_w


class TestHostCpuBulkOps:
    def test_bulk_ops_are_bandwidth_bound(self):
        cpu = HostCpu()
        metrics = cpu.bulk_bitwise("and", 32 << 20)
        bandwidth_time_ns = (
            TRAFFIC_FACTORS["and"] * (32 << 20) / cpu.effective_bandwidth_bytes_per_s() * 1e9
        )
        assert metrics.latency_ns == pytest.approx(bandwidth_time_ns)

    def test_not_is_faster_than_and(self):
        cpu = HostCpu()
        assert cpu.bulk_bitwise("not", 1 << 20).latency_ns < cpu.bulk_bitwise("and", 1 << 20).latency_ns

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            HostCpu().bulk_bitwise("mystery", 1024)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            HostCpu().bulk_bitwise("and", -1)
        with pytest.raises(ValueError):
            HostCpu().bulk_copy(-1)

    def test_copy_and_fill(self):
        cpu = HostCpu()
        copy = cpu.bulk_copy(1 << 20)
        fill = cpu.bulk_fill(1 << 20)
        assert copy.latency_ns > fill.latency_ns  # copy moves more data
        assert copy.bytes_moved_on_channel == 3 * (1 << 20)
        assert fill.bytes_moved_on_channel == 2 * (1 << 20)

    def test_energy_scales_with_size(self):
        cpu = HostCpu()
        small = cpu.bulk_bitwise("xor", 1 << 20)
        large = cpu.bulk_bitwise("xor", 8 << 20)
        assert large.energy_j > 4 * small.energy_j

    def test_throughput_metric_consistent(self):
        cpu = HostCpu()
        metrics = cpu.bulk_bitwise("or", 1 << 20)
        assert metrics.throughput_bytes_per_s == pytest.approx(
            (1 << 20) / (metrics.latency_ns * 1e-9)
        )

    def test_random_access_workload(self):
        cpu = HostCpu()
        metrics = cpu.random_access_workload(100000)
        assert metrics.latency_ns > 0
        assert metrics.energy_j > 0
        with pytest.raises(ValueError):
            cpu.random_access_workload(-1)

    def test_server_parameters_have_more_cores(self):
        assert CpuParameters.server_32core().cores > CpuParameters.skylake().cores


class TestHostGpu:
    def test_bandwidth_bound_and_traffic_factor(self):
        gpu = HostGpu()
        metrics = gpu.bulk_bitwise("and", 32 << 20)
        expected_ns = 3.0 * (32 << 20) / gpu.effective_bandwidth_bytes_per_s() * 1e9
        assert metrics.latency_ns == pytest.approx(expected_ns)

    def test_gpu_faster_than_cpu_for_bulk_ops(self):
        # The GTX 745 has more usable bandwidth for these kernels than the
        # dual-channel DDR3 host (no read-for-ownership traffic).
        cpu_metrics = HostCpu().bulk_bitwise("and", 32 << 20)
        gpu_metrics = HostGpu().bulk_bitwise("and", 32 << 20)
        assert gpu_metrics.latency_ns < cpu_metrics.latency_ns

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            HostGpu().bulk_bitwise("mystery", 64)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            HostGpu().bulk_bitwise("and", -64)

    def test_parameters_preset(self):
        assert GpuParameters.gtx745().memory_bandwidth_bytes_per_s == pytest.approx(28.8e9)
