"""Tests for repro.ambit.bitvector."""

import numpy as np
import pytest

from repro.ambit.bitvector import BulkBitVector


class TestSizing:
    def test_rows_and_storage(self):
        vector = BulkBitVector(num_bits=100, row_size_bytes=8)
        assert vector.num_bytes == 13
        assert vector.num_rows == 2
        assert vector.storage_bytes == 16

    def test_exact_row_multiple(self):
        vector = BulkBitVector(num_bits=64, row_size_bytes=8)
        assert vector.num_rows == 1
        assert vector.storage_bytes == 8

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            BulkBitVector(0)
        with pytest.raises(ValueError):
            BulkBitVector(8, row_size_bytes=0)


class TestBitAccess:
    def test_set_get_bit(self):
        vector = BulkBitVector(20)
        vector.set_bit(0, 1)
        vector.set_bit(13, 1)
        assert vector.get_bit(0) == 1
        assert vector.get_bit(1) == 0
        assert vector.get_bit(13) == 1
        vector.set_bit(13, 0)
        assert vector.get_bit(13) == 0

    def test_bit_bounds_checked(self):
        vector = BulkBitVector(20)
        with pytest.raises(IndexError):
            vector.get_bit(20)
        with pytest.raises(IndexError):
            vector.set_bit(-1, 1)
        with pytest.raises(ValueError):
            vector.set_bit(0, 2)

    def test_count_ones(self):
        vector = BulkBitVector(20)
        for index in (0, 5, 13, 19):
            vector.set_bit(index, 1)
        assert vector.count_ones() == 4

    def test_count_ones_ignores_padding(self):
        vector = BulkBitVector(10)
        vector.fill_value(1)
        assert vector.count_ones() == 10


class TestLoading:
    def test_fill_value(self):
        ones = BulkBitVector(77).fill_value(1)
        assert ones.count_ones() == 77
        zeros = BulkBitVector(77).fill_value(0)
        assert zeros.count_ones() == 0
        with pytest.raises(ValueError):
            BulkBitVector(8).fill_value(2)

    def test_fill_random_density(self):
        vector = BulkBitVector(100_000).fill_random(seed=3, density=0.25)
        density = vector.count_ones() / vector.num_bits
        assert 0.22 < density < 0.28

    def test_fill_random_reproducible(self):
        a = BulkBitVector(1000).fill_random(seed=11)
        b = BulkBitVector(1000).fill_random(seed=11)
        assert np.array_equal(a.data, b.data)

    def test_fill_random_density_bounds(self):
        with pytest.raises(ValueError):
            BulkBitVector(8).fill_random(density=1.5)

    def test_load_and_unload_bits_roundtrip(self):
        bits = np.random.default_rng(0).integers(0, 2, 1000)
        vector = BulkBitVector(1000).load_bits(bits)
        assert np.array_equal(vector.to_bits(), bits)

    def test_load_bits_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            BulkBitVector(10).load_bits(np.zeros(11))

    def test_row_bytes_roundtrip(self):
        vector = BulkBitVector(8 * 64, row_size_bytes=16)
        chunk = np.arange(16, dtype=np.uint8)
        vector.set_row_bytes(2, chunk)
        assert np.array_equal(vector.row_bytes(2), chunk)
        with pytest.raises(IndexError):
            vector.row_bytes(10)
        with pytest.raises(ValueError):
            vector.set_row_bytes(0, np.zeros(3, dtype=np.uint8))


class TestReferenceOps:
    def test_expected_ops_match_numpy(self):
        a = BulkBitVector(256).fill_random(seed=1)
        b = BulkBitVector(256).fill_random(seed=2)
        assert np.array_equal(a.expected_and(b), a.data[:32] & b.data[:32])
        assert np.array_equal(a.expected_or(b), a.data[:32] | b.data[:32])
        assert np.array_equal(a.expected_xor(b), a.data[:32] ^ b.data[:32])
        assert np.array_equal(a.expected_not(), np.bitwise_not(a.data[:32]))

    def test_length_mismatch_rejected(self):
        a = BulkBitVector(256)
        b = BulkBitVector(128)
        with pytest.raises(ValueError):
            a.expected_and(b)

    def test_copy_like_preserves_shape_only(self):
        a = BulkBitVector(100, row_size_bytes=32).fill_value(1)
        twin = a.copy_like()
        assert twin.num_bits == 100
        assert twin.row_size_bytes == 32
        assert twin.count_ones() == 0
