#!/usr/bin/env python
"""Validate emitted ``BENCH_*.json`` / ``TRACE_*.json`` files against schemas.

The benchmarks emit machine-readable perf trajectories (see
``benchmarks/_bench_utils.emit_json``) that CI archives and diffs across
runs.  A malformed payload — a missing field after a refactor, a NaN from
a division by an empty window, a stringified number — previously uploaded
silently and poisoned every later comparison.  This tool makes CI fail
instead::

    python tools/validate_bench.py BENCH_*.json TRACE_*.json

Each ``BENCH_<name>.json`` file is checked against the schema registered
for its name; unknown names still get the generic sweep.  ``TRACE_*.json``
files (Perfetto trace-event exports from ``repro.obs``, see
``benchmarks/_bench_utils.emit_trace``) validate against the trace-event
schema, and ``METRICS_*.json`` files against the metrics-snapshot schema
(also accepted embedded in a trace under its ``metrics`` key).  Two
layers of checking:

* a **generic sweep** over every payload: valid JSON, an object at the
  top level, and every number finite (``NaN``/``Infinity`` literals are
  rejected at parse time — Python's ``json`` accepts them by default,
  which is exactly how a NaN sneaks into a trajectory);
* a **per-benchmark schema** (a hand-rolled subset of JSON Schema:
  ``type``, ``required``, ``properties``, ``patternProperties``,
  ``additionalProperties``, ``items``, ``minimum``) pinning the fields
  the trajectory diffing relies on.

Stdlib-only on purpose: the CI lint job must not grow dependencies.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

JsonSchema = Dict[str, Any]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def validate(instance: Any, schema: JsonSchema, path: str = "$") -> List[str]:
    """Validate ``instance`` against the mini-schema; returns error strings."""
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        if expected == "number":
            ok = isinstance(instance, (int, float)) and not isinstance(instance, bool)
        elif expected == "integer":
            ok = isinstance(instance, int) and not isinstance(instance, bool)
        else:
            ok = isinstance(instance, _TYPES[expected])
        if not ok:
            errors.append(f"{path}: expected {expected}, got {type(instance).__name__}")
            return errors
    if "minimum" in schema and isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} is below minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties: Dict[str, JsonSchema] = schema.get("properties", {})
        patterns: Dict[str, JsonSchema] = schema.get("patternProperties", {})
        additional = schema.get("additionalProperties")
        for name, value in instance.items():
            child = f"{path}.{name}"
            if name in properties:
                errors.extend(validate(value, properties[name], child))
                continue
            matched = False
            for pattern, sub_schema in patterns.items():
                if re.search(pattern, name):
                    errors.extend(validate(value, sub_schema, child))
                    matched = True
                    break
            if matched:
                continue
            if additional is False:
                errors.append(f"{path}: unexpected property {name!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, child))
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{index}]"))
    return errors


# ---------------------------------------------------------------------
# Per-benchmark schemas
# ---------------------------------------------------------------------
_COUNT = {"type": "integer", "minimum": 0}
_NS = {"type": "number", "minimum": 0}
_NUMBER = {"type": "number"}

#: Per-mode block of the pipeline A/B benchmark.
_PIPELINE_MODE: JsonSchema = {
    "type": "object",
    "required": [
        "completed",
        "rejected",
        "batches",
        "throughput_gb_s",
        "sojourn_p50_us",
        "sojourn_p99_us",
        "makespan_ms",
        "busy_ms",
        "bank_idle_fraction",
        "cross_batch_overlap_ms",
    ],
    "properties": {
        "completed": _COUNT,
        "rejected": _COUNT,
        "batches": _COUNT,
        "throughput_gb_s": _NS,
        "sojourn_p50_us": _NS,
        "sojourn_p99_us": _NS,
        "makespan_ms": _NS,
        "busy_ms": _NS,
        "bank_idle_fraction": _NUMBER,
        "cross_batch_overlap_ms": _NS,
    },
}

#: Per-shard-count block of the cluster scaling benchmark.
_CLUSTER_POINT: JsonSchema = {
    "type": "object",
    "required": [
        "offered",
        "completed",
        "rejected",
        "throughput_gb_s",
        "sojourn_p50_us",
        "sojourn_p99_us",
        "makespan_ms",
        "busy_ms",
        "mean_utilization",
        "imbalance",
        "host_merge_us",
    ],
    "properties": {
        "offered": _COUNT,
        "completed": _COUNT,
        "rejected": _COUNT,
        "throughput_gb_s": _NS,
        "mean_utilization": _NUMBER,
        "imbalance": _NUMBER,
        "host_merge_us": _NS,
    },
    "additionalProperties": _NUMBER,
}

#: Per-mode block of the plan optimizer A/B benchmark.
_OPTIMIZER_MODE: JsonSchema = {
    "type": "object",
    "required": [
        "completed",
        "rejected",
        "batches",
        "throughput_gb_s",
        "sojourn_p50_us",
        "sojourn_p99_us",
        "makespan_ms",
        "busy_ms",
        "ops_eliminated",
        "shared_subchains",
        "host_merge_us",
    ],
    "properties": {
        "completed": _COUNT,
        "rejected": _COUNT,
        "batches": _COUNT,
        "throughput_gb_s": _NS,
        "sojourn_p50_us": _NS,
        "sojourn_p99_us": _NS,
        "makespan_ms": _NS,
        "busy_ms": _NS,
        "ops_eliminated": _COUNT,
        "shared_subchains": _COUNT,
        "host_merge_us": _NS,
    },
}

#: Per-mode block of the mixed read/write benchmark (cache + maintenance).
_WRITES_MODE: JsonSchema = {
    "type": "object",
    "required": [
        "completed",
        "rejected",
        "batches",
        "throughput_gb_s",
        "sojourn_p50_us",
        "sojourn_p99_us",
        "makespan_ms",
        "busy_ms",
        "energy_j",
        "writes",
        "write_latency_us",
        "write_energy_j",
        "rebuilds",
        "cache_hits",
        "cache_misses",
        "cache_invalidations",
        "cache_fills",
        "cache_bypasses",
        "cache_evictions",
    ],
    "properties": {
        "completed": _COUNT,
        "rejected": _COUNT,
        "batches": _COUNT,
        "throughput_gb_s": _NS,
        "sojourn_p50_us": _NS,
        "sojourn_p99_us": _NS,
        "makespan_ms": _NS,
        "busy_ms": _NS,
        "energy_j": _NS,
        "writes": _COUNT,
        "write_latency_us": _NS,
        "write_energy_j": _NS,
        "rebuilds": _COUNT,
        "cache_hits": _COUNT,
        "cache_misses": _COUNT,
        "cache_invalidations": _COUNT,
        "cache_fills": _COUNT,
        "cache_bypasses": _COUNT,
        "cache_evictions": _COUNT,
    },
    "additionalProperties": False,
}

#: One Chrome/Perfetto trace event.  ``X`` (complete) events carry ``dur``;
#: ``M`` (metadata) events carry only ``args``; all share the envelope.
_TRACE_EVENT: JsonSchema = {
    "type": "object",
    "required": ["name", "ph", "pid", "tid", "ts"],
    "properties": {
        "name": {"type": "string"},
        "cat": {"type": "string"},
        "ph": {"type": "string"},
        "pid": _COUNT,
        "tid": _COUNT,
        "ts": _NS,
        "dur": _NS,
        "args": {"type": "object"},
    },
    "additionalProperties": False,
}

#: One streaming-histogram snapshot from ``repro.obs.MetricsRegistry``.
_HISTOGRAM_SNAPSHOT: JsonSchema = {
    "type": "object",
    "required": ["count", "sum", "min", "max", "p50", "p99"],
    "properties": {
        "count": _COUNT,
        "sum": _NUMBER,
        "min": _NUMBER,
        "max": _NUMBER,
        "p50": _NUMBER,
        "p99": _NUMBER,
    },
    "additionalProperties": False,
}

#: A full metrics-registry snapshot (``METRICS_*.json`` or the ``metrics``
#: key of a trace file).
METRICS_SNAPSHOT_SCHEMA: JsonSchema = {
    "type": "object",
    "required": ["counters", "gauges", "histograms"],
    "properties": {
        "counters": {"type": "object", "additionalProperties": _NUMBER},
        "gauges": {"type": "object", "additionalProperties": _NUMBER},
        "histograms": {"type": "object", "additionalProperties": _HISTOGRAM_SNAPSHOT},
    },
    "additionalProperties": False,
}

#: A Perfetto trace-event export (``TRACE_*.json``).
TRACE_SCHEMA: JsonSchema = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {"type": "array", "items": _TRACE_EVENT},
        "displayTimeUnit": {"type": "string"},
        "metrics": METRICS_SNAPSHOT_SCHEMA,
    },
    "additionalProperties": False,
}

#: Per-mode block of the elastic fault-tolerance A/B benchmark.
_ELASTIC_MODE: JsonSchema = {
    "type": "object",
    "required": [
        "offered",
        "completed",
        "rejected",
        "makespan_ms",
        "throughput_krps",
        "sojourn_p99_us",
    ],
    "properties": {
        "offered": _COUNT,
        "completed": _COUNT,
        "rejected": _COUNT,
        "makespan_ms": _NS,
        "throughput_krps": _NS,
        "sojourn_p99_us": _NS,
    },
    "additionalProperties": _NUMBER,
}

SCHEMAS: Dict[str, JsonSchema] = {
    "elastic": {
        "type": "object",
        "required": [
            "healthy",
            "faulted",
            "kill_us",
            "recovery_us",
            "lost_requests",
            "failovers",
            "migrated_parts",
            "throughput_ratio",
        ],
        "properties": {
            "healthy": _ELASTIC_MODE,
            "faulted": _ELASTIC_MODE,
            "kill_us": _NS,
            "recovery_us": _NS,
            "lost_requests": _COUNT,
            "failovers": _COUNT,
            "migrated_parts": _COUNT,
            "throughput_ratio": {"type": "number", "minimum": 0},
        },
        "additionalProperties": _NUMBER,
    },
    "pipeline": {
        "type": "object",
        "required": ["barrier", "pipelined", "pipelined_vs_barrier_throughput"],
        "properties": {
            "barrier": _PIPELINE_MODE,
            "pipelined": _PIPELINE_MODE,
            "pipelined_vs_barrier_throughput": {"type": "number", "minimum": 0},
        },
        "additionalProperties": False,
    },
    "cluster": {
        "type": "object",
        "required": ["shard_counts", "scaling_speedup"],
        "properties": {
            "shard_counts": {"type": "array", "items": {"type": "integer", "minimum": 1}},
            "scaling_speedup": {"type": "number", "minimum": 0},
        },
        "patternProperties": {r"^shards_\d+$": _CLUSTER_POINT},
        "additionalProperties": False,
    },
    "optimizer": {
        "type": "object",
        "required": [
            "baseline",
            "optimized",
            "optimized_vs_baseline_throughput",
            "duplication_rate",
        ],
        "properties": {
            "baseline": _OPTIMIZER_MODE,
            "optimized": _OPTIMIZER_MODE,
            "optimized_vs_baseline_throughput": {"type": "number", "minimum": 0},
            "duplication_rate": {"type": "number", "minimum": 0},
        },
        "additionalProperties": False,
    },
    "writes": {
        "type": "object",
        "required": [
            "eager_nocache",
            "eager",
            "lazy",
            "hybrid",
            "cache_on_vs_off_throughput",
            "duplication_rate",
            "write_fraction",
        ],
        "properties": {
            "eager_nocache": _WRITES_MODE,
            "eager": _WRITES_MODE,
            "lazy": _WRITES_MODE,
            "hybrid": _WRITES_MODE,
            "cache_on_vs_off_throughput": {"type": "number", "minimum": 0},
            "duplication_rate": {"type": "number", "minimum": 0},
            "write_fraction": {"type": "number", "minimum": 0},
        },
        "additionalProperties": False,
    },
    "service_frontend": {
        "type": "object",
        "required": [
            "offered",
            "completed",
            "rejected",
            "batches",
            "deadline_misses",
            "throughput_gb_s",
            "speedup_vs_sequential",
            "wait_p50_us",
            "wait_p99_us",
            "sojourn_p50_us",
            "sojourn_p99_us",
        ],
        "properties": {
            "offered": _COUNT,
            "completed": _COUNT,
            "rejected": _COUNT,
            "batches": _COUNT,
            "deadline_misses": _COUNT,
            "throughput_gb_s": _NS,
            "speedup_vs_sequential": _NS,
        },
        "additionalProperties": _NUMBER,
    },
}


def _reject_constant(value: str) -> float:
    raise ValueError(f"non-finite number {value!r} in payload")


def _sweep_finite(instance: Any, path: str = "$") -> List[str]:
    """Generic sweep: every number in the payload must be finite."""
    errors: List[str] = []
    if isinstance(instance, bool):
        return errors
    if isinstance(instance, float) and instance != instance:
        errors.append(f"{path}: NaN value")
    elif isinstance(instance, float) and instance in (float("inf"), float("-inf")):
        errors.append(f"{path}: infinite value")
    elif isinstance(instance, dict):
        for name, value in instance.items():
            errors.extend(_sweep_finite(value, f"{path}.{name}"))
    elif isinstance(instance, list):
        for index, item in enumerate(instance):
            errors.extend(_sweep_finite(item, f"{path}[{index}]"))
    return errors


def _schema_for(name: str) -> Optional[JsonSchema]:
    """Pick the schema a file name demands (None: generic sweep only)."""
    match = re.fullmatch(r"TRACE_(.+)\.json", name)
    if match is not None:
        return TRACE_SCHEMA
    match = re.fullmatch(r"METRICS_(.+)\.json", name)
    if match is not None:
        return METRICS_SNAPSHOT_SCHEMA
    match = re.fullmatch(r"BENCH_(.+)\.json", name)
    if match is not None:
        return SCHEMAS.get(match.group(1))
    raise ValueError("not named BENCH_<name>.json, TRACE_<name>.json, or METRICS_<name>.json")


def validate_file(path: Path) -> List[str]:
    """Validate one BENCH/TRACE/METRICS json file; returns error strings."""
    try:
        schema = _schema_for(path.name)
    except ValueError as error:
        return [f"{path}: {error}"]
    try:
        payload = json.loads(path.read_text(), parse_constant=_reject_constant)
    except ValueError as error:
        return [f"{path}: {error}"]
    errors = [f"{path}: {e}" for e in _sweep_finite(payload)]
    if not isinstance(payload, dict):
        errors.append(f"{path}: top level must be a JSON object")
        return errors
    if schema is not None:
        errors.extend(f"{path}: {e}" for e in validate(payload, schema))
    return errors


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: validate_bench.py BENCH_*.json TRACE_*.json", file=sys.stderr)
        return 2
    failures: List[str] = []
    for arg in argv:
        path = Path(arg)
        if not path.exists():
            failures.append(f"{path}: no such file")
            continue
        failures.extend(validate_file(path))
    for failure in failures:
        print(failure)
    if failures:
        print(f"validate_bench: {len(failures)} error(s)", file=sys.stderr)
        return 1
    print(f"validate_bench: {len(argv)} file(s) valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
