#!/usr/bin/env python
"""Repo invariant lint: an AST pass over ``src/repro`` run as a CI gate.

Four rules, each guarding an invariant the simulator's design depends on
(stdlib-only; no third-party linter required):

* ``mutable-default`` — a dataclass field whose default is a mutable
  literal or a shared call result (anything but ``dataclasses.field``),
  including ``field(default=<mutable>)``.  One instance's mutation leaks
  into every other — the exact defect PR 1 had to hand-audit out of
  ``tesseract/runtime.py`` and ``stacked/hmc.py``.
* ``wall-clock`` — importing ``time``/``random`` or calling
  ``datetime.now``/``utcnow`` inside the simulator.  The pipeline runs on
  a *virtual* clock with seeded NumPy RNGs; wall-clock time or process
  randomness makes runs unreproducible.
* ``frozen-mutation`` — ``self.attr = ...`` inside a method of a
  ``@dataclass(frozen=True)`` class: it raises ``FrozenInstanceError`` at
  runtime, so any such line is an untested path.  The sanctioned
  ``object.__setattr__`` idiom (used in ``__post_init__``) is not flagged.
* ``export-drift`` — an ``__all__`` entry that is not bound at module top
  level (or listed twice): the export list has drifted from the module.
* ``obs-wall-clock`` — importing ``time``/``random``/``datetime`` inside
  ``repro.obs``.  The observability plane stamps spans from the same
  virtual-clock timestamps the scheduler computed; a wall-clock read
  there would silently desynchronise traces from the simulation (and is
  the one place ``datetime`` imports are tempting, for "timestamps").
  Fires *instead of* the generic ``wall-clock`` rule on those files.
* ``cache-aliasing`` — a public method of ``repro.cache`` returning a
  stored buffer (``return something.data`` or ``return something[...]``)
  instead of a copy.  The result cache hands bitmaps to consumers that
  may mutate them in place; an aliased return would corrupt every later
  hit of that entry.  ``.copy()`` calls (and any other call result)
  pass.

A finding is suppressed by a ``# lint: allow[<rule>]`` comment on its
line.  Run locally with::

    python tools/lint_invariants.py            # lints src/repro
    python tools/lint_invariants.py path ...   # lints specific files/trees

Exit status is 1 when any finding survives, so CI can gate on it.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

#: Rules this linter knows (the only rule names a waiver may reference).
RULES = (
    "mutable-default",
    "wall-clock",
    "frozen-mutation",
    "export-drift",
    "obs-wall-clock",
    "cache-aliasing",
)

_WAIVER_RE = re.compile(r"#\s*lint:\s*allow\[([a-z-]+)\]")

#: Stdlib modules whose import means wall-clock/process randomness.
_WALL_CLOCK_MODULES = {"time", "random"}

#: Modules banned inside ``repro.obs``: the tracing plane must only ever
#: see virtual-clock nanoseconds, so even ``datetime`` (allowed elsewhere
#: for formatting) is off-limits there.
_OBS_CLOCK_MODULES = {"time", "random", "datetime"}

#: Mutable literal node types a default must never be.
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a file/line and naming its rule."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _waivers(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rules waived on that line."""
    waived: Dict[int, Set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        for match in _WAIVER_RE.finditer(text):
            waived.setdefault(number, set()).add(match.group(1))
    return waived


def _decorator_name(node: ast.expr) -> str:
    """Dotted name of a decorator (without call parentheses)."""
    target = node.func if isinstance(node, ast.Call) else node
    parts: List[str] = []
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
    return ".".join(reversed(parts))


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    for decorator in node.decorator_list:
        if _decorator_name(decorator) in ("dataclass", "dataclasses.dataclass"):
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


def _is_field_call(node: ast.expr) -> bool:
    return isinstance(node, ast.Call) and _decorator_name(node) in (
        "field",
        "dataclasses.field",
    )


class _ModuleLinter(ast.NodeVisitor):
    """Collects findings for one parsed module."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        # Frozen-dataclass nesting: methods of a frozen dataclass may not
        # assign to self; a nested non-frozen class resets the context.
        self._frozen_stack: List[bool] = []
        # Observability modules get the stricter clock rule (obs-wall-clock
        # fires there instead of the generic wall-clock rule).  The fault
        # plan and elastic controller ride on the same rule: they schedule
        # and decide purely on the virtual clock, so host time in either
        # would silently desynchronize fault replay.
        normalized = path.replace("\\", "/")
        self._in_obs = any(
            fragment in normalized
            for fragment in (
                "repro/obs",
                "repro/cluster/faults",
                "repro/cluster/controller",
            )
        )
        # Cache modules get the aliasing rule on public-method returns.
        self._in_cache = "repro/cache" in path.replace("\\", "/")
        self._function_stack: List[str] = []

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(path=self.path, line=getattr(node, "lineno", 0), rule=rule, message=message)
        )

    # -- mutable-default + frozen context ------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        decorator = _dataclass_decorator(node)
        if decorator is not None:
            self._check_dataclass_defaults(node)
        self._frozen_stack.append(decorator is not None and _is_frozen(decorator))
        self.generic_visit(node)
        self._frozen_stack.pop()

    def _check_dataclass_defaults(self, node: ast.ClassDef) -> None:
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and statement.value is not None:
                self._check_default(statement.value)
            elif isinstance(statement, ast.Assign):
                self._check_default(statement.value)

    def _check_default(self, value: ast.expr) -> None:
        if _is_field_call(value):
            assert isinstance(value, ast.Call)
            for keyword in value.keywords:
                if keyword.arg == "default" and self._is_shared_mutable(keyword.value):
                    self._add(
                        keyword.value,
                        "mutable-default",
                        "field(default=...) holds a mutable value shared by "
                        "every instance; use default_factory",
                    )
            return
        if self._is_shared_mutable(value):
            self._add(
                value,
                "mutable-default",
                "dataclass default is a mutable/shared object (every instance "
                "aliases it); use dataclasses.field(default_factory=...)",
            )

    @staticmethod
    def _is_shared_mutable(value: ast.expr) -> bool:
        if isinstance(value, _MUTABLE_LITERALS):
            return True
        # Any call result bound in the class body is evaluated once and
        # shared by every instance — mutable or not, it is an aliasing
        # hazard (and the immutable cases belong in a plain constant).
        return isinstance(value, ast.Call)

    # -- wall-clock / obs-wall-clock -----------------------------------
    def _clock_import(self, node: ast.AST, root: str, phrase: str) -> None:
        """Flag a clock-tainted import under whichever rule applies here."""
        if self._in_obs:
            if root in _OBS_CLOCK_MODULES:
                self._add(
                    node,
                    "obs-wall-clock",
                    f"{phrase} inside a virtual-clock control module "
                    "(repro.obs, the fault plan, the elastic controller): "
                    "only virtual-clock nanoseconds, never host time",
                )
        elif root in _WALL_CLOCK_MODULES:
            self._add(
                node,
                "wall-clock",
                f"{phrase}: the simulator runs on a virtual "
                "clock with seeded NumPy RNGs",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            self._clock_import(node, root, f"import of {alias.name!r}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if node.level == 0:
            self._clock_import(node, root, f"import from {node.module!r}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _decorator_name(node)
        if name.endswith((".now", ".utcnow")) and "datetime" in name:
            self._add(node, "wall-clock", f"call of {name}: wall-clock reads are unreproducible")
        self.generic_visit(node)

    # -- cache-aliasing ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_Return(self, node: ast.Return) -> None:
        if (
            self._in_cache
            and self._function_stack
            and not self._function_stack[-1].startswith("_")
            and node.value is not None
        ):
            if isinstance(node.value, ast.Subscript) or (
                isinstance(node.value, ast.Attribute) and node.value.attr == "data"
            ):
                self._add(
                    node,
                    "cache-aliasing",
                    "public cache method returns a stored buffer directly; "
                    "return a .copy() so a consumer's in-place mutation "
                    "cannot corrupt later hits",
                )
        self.generic_visit(node)

    # -- frozen-mutation -----------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_self_assign(node, node.targets)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_self_assign(node, [node.target])
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_self_assign(node, [node.target])
        self.generic_visit(node)

    def _check_self_assign(self, node: ast.AST, targets: Sequence[ast.expr]) -> None:
        if not (self._frozen_stack and self._frozen_stack[-1]):
            return
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self._add(
                    node,
                    "frozen-mutation",
                    f"assignment to self.{target.attr} inside a frozen dataclass "
                    "raises FrozenInstanceError at runtime",
                )


def _check_export_drift(path: str, tree: ast.Module, findings: List[Finding]) -> None:
    """``__all__`` names must each be bound once at module top level."""
    exported: Optional[ast.expr] = None
    bound: Set[str] = set()
    for statement in tree.body:
        if isinstance(statement, (ast.Import, ast.ImportFrom)):
            for alias in statement.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(statement.name)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                    if target.id == "__all__":
                        exported = statement.value
        elif isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            bound.add(statement.target.id)
    if exported is None or not isinstance(exported, (ast.List, ast.Tuple)):
        return
    seen: Set[str] = set()
    for element in exported.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            continue
        name = element.value
        if name in seen:
            findings.append(
                Finding(path, element.lineno, "export-drift", f"__all__ lists {name!r} twice")
            )
        seen.add(name)
        if name not in bound:
            findings.append(
                Finding(
                    path,
                    element.lineno,
                    "export-drift",
                    f"__all__ exports {name!r} but the module never binds it "
                    "at top level",
                )
            )


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one module's source text; returns surviving findings."""
    tree = ast.parse(source, filename=path)
    linter = _ModuleLinter(path)
    linter.visit(tree)
    findings = linter.findings
    _check_export_drift(path, tree, findings)
    waived = _waivers(source)
    return [f for f in findings if f.rule not in waived.get(f.line, set())]


def collect_findings(paths: Iterable[Path]) -> List[Finding]:
    """Lint files/trees; directories are walked for ``*.py``."""
    findings: List[Finding] = []
    for path in paths:
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            findings.extend(lint_source(file.read_text(), str(file)))
    return findings


def main(argv: Sequence[str]) -> int:
    targets = [Path(arg) for arg in argv] or [Path("src/repro")]
    missing = [t for t in targets if not t.exists()]
    if missing:
        print(f"lint_invariants: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    findings = collect_findings(targets)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: clean ({', '.join(map(str, targets))})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
