#!/usr/bin/env python3
"""Quickstart: bulk bitwise operations in DRAM with the PIMSystem API.

This example allocates two bit vectors inside a simulated DDR3 device,
combines them with Ambit's in-DRAM bulk AND/OR/XOR operations, and prints
the latency/energy comparison against the host-CPU baseline for every step.

Run with::

    python examples/quickstart.py
"""

from repro.core import PIMSystem


def main() -> None:
    system = PIMSystem.default()
    print("Memory system:", system.device.geometry.describe())
    print()

    # One million-element bitmap per operand (e.g. two filter predicates).
    num_bits = 8 * 1024 * 1024
    region_filter = system.alloc_bitvector(num_bits).fill_random(seed=1, density=0.25)
    price_filter = system.alloc_bitvector(num_bits).fill_random(seed=2, density=0.40)

    # All of these execute inside DRAM: no data crosses the memory channel.
    both = system.bulk_and(region_filter, price_filter)
    either = system.bulk_or(region_filter, price_filter)
    exactly_one = system.bulk_xor(region_filter, price_filter)

    print(f"rows matching both filters     : {both.count_ones():,}")
    print(f"rows matching either filter    : {either.count_ones():,}")
    print(f"rows matching exactly one      : {exactly_one.count_ones():,}")
    print()

    # Bulk data movement with RowClone: zero a 64 MiB buffer and checkpoint it.
    system.fill(64 << 20)
    system.copy(64 << 20)

    print(system.history_table().render())
    print()
    print("Most recent operation:", system.last_operation_report())


if __name__ == "__main__":
    main()
