#!/usr/bin/env python3
"""The write path end to end: maintenance strategies and the result cache.

PR 9 makes the database *mutable*: ``AppendRequest`` / ``UpdateRequest``
/ ``DeleteRequest`` flow through the same admission-controlled frontend
as reads, a :class:`~repro.storage.MaintenancePolicy` decides when the
bitmap planes are repaired, and the cross-batch
:class:`~repro.cache.ResultCache` turns repeated conjunctions into
host-memory reads — *if* its write-driven invalidation keeps it honest.
This example walks the three mechanisms:

* **strategies** — the same update stream under eager (pay at write
  time), lazy (first read repairs), and hybrid (hot columns eager, cold
  lazy, driven by the ``storage.reads.*`` counters);
* **invalidation** — a hot cached conjunction survives writes to columns
  it does not depend on and is dropped the moment one it *does* depend
  on mutates, then re-warms on the next read;
* **consistency** — every answer stays bit-exact with a from-scratch
  rebuild of the mutated table, which is the whole point.

Run with::

    python examples/write_workload.py
"""

import numpy as np

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.tables import ResultTable
from repro.database.bitmap_index import BitmapIndex
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.service import (
    BatchExecutor,
    BatchPolicy,
    BitmapConjunctionRequest,
    ServiceFrontend,
)
from repro.storage import AppendRequest, UpdateRequest

ROWS = 65536
CARDINALITIES = {"region": 16, "status": 8, "channel": 8}
HOT_PREDICATES = (("region", (1, 2, 3)), ("channel", (0, 1)))
STATUS_PREDICATES = (("status", (0, 1)), ("region", (4, 5)))


def build_frontend(maintenance: str, cache: bool) -> ServiceFrontend:
    engine = AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=8))
    return ServiceFrontend(
        executor=BatchExecutor(engine=engine, sanitize=True),
        policy=BatchPolicy(max_batch=16, window_ns=None),
        max_queue_depth=512,
        cache=cache,
        maintenance=maintenance,
        observe=True,
    )


def build_table(seed: int = 5):
    rng = np.random.default_rng(seed)
    table = ColumnTable("orders", ROWS)
    for name, cardinality in CARDINALITIES.items():
        table.add_column(
            name, rng.integers(0, cardinality, size=ROWS), cardinality=cardinality
        )
    return table, BitmapIndex(table, list(CARDINALITIES))


def strategy_comparison() -> None:
    """The same mixed stream under the three maintenance strategies."""
    print("=== eager / lazy / hybrid on one mixed stream ===")
    table_out = ResultTable(
        title="24 reads + 8 status updates per mode",
        columns=["strategy", "write_us", "read_us", "rebuilds", "cache_hits"],
    )
    for strategy in ("eager", "lazy", "hybrid"):
        rng = np.random.default_rng(5)
        table, index = build_table()
        frontend = build_frontend(strategy, cache=True)
        for _ in range(24):
            frontend.offer(BitmapConjunctionRequest(index=index, predicates=HOT_PREDICATES))
            if rng.random() < 0.33:
                row_ids = rng.choice(ROWS, size=64, replace=False)
                frontend.offer(
                    UpdateRequest(
                        table=table, index=index, column="status",
                        row_ids=[int(r) for r in row_ids],
                        values=[int(v) for v in rng.integers(0, 8, size=64)],
                    )
                )
            if rng.random() < 0.25:
                # A read over the written column: lazy pays its deferred
                # rebuild here, visible in the rebuilds column.
                frontend.offer(
                    BitmapConjunctionRequest(index=index, predicates=STATUS_PREDICATES)
                )
            frontend.drain()
        records = frontend.result().completed()
        write_ns = sum(
            r.metrics.latency_ns for r in records if r.request.__class__ is UpdateRequest
        )
        read_ns = sum(
            r.metrics.latency_ns for r in records if r.request.__class__ is not UpdateRequest
        )
        table_out.add_row(
            strategy,
            write_ns / 1e3,
            read_ns / 1e3,
            index.rebuilds,
            frontend.result().metrics.cache_hits,
        )
    print(table_out.render())
    print()


def invalidation_walkthrough() -> None:
    """Watch one hot cached conjunction live through writes."""
    print("=== write-driven invalidation of a hot conjunction ===")
    rng = np.random.default_rng(7)
    table, index = build_table()
    frontend = build_frontend("hybrid", cache=True)
    cache = frontend.cache

    def read() -> None:
        frontend.offer(BitmapConjunctionRequest(index=index, predicates=HOT_PREDICATES))
        frontend.drain()

    read()  # cold: fills the cache
    read()  # warm: served from host memory
    print(f"after two reads: hits={cache.hits} fills={cache.fills} "
          f"live_entries={cache.live_entries}")

    # A write to an *unrelated* column leaves the entry alone...
    frontend.offer(
        UpdateRequest(
            table=table, index=index, column="status",
            row_ids=[0, 1, 2], values=[1, 2, 3],
        )
    )
    frontend.drain()
    read()
    print(f"after a status write + read: hits={cache.hits} "
          f"invalidations={cache.invalidations} (entry survived)")

    # ...while an append changes num_rows: everything for the index drops,
    # and the next read re-warms the cache from the new planes.
    frontend.offer(
        AppendRequest(
            table=table, index=index,
            rows={name: [0, 1] for name in CARDINALITIES},
        )
    )
    frontend.drain()
    print(f"after an append: invalidations={cache.invalidations} "
          f"live_entries={cache.live_entries}")
    read()  # re-warm
    read()
    print(f"after two more reads: hits={cache.hits} fills={cache.fills}")

    # Consistency: the served planes equal a from-scratch rebuild.
    fresh = BitmapIndex(table, list(CARDINALITIES))
    assert all(
        np.array_equal(index.bitmap(c, v), fresh.bitmap(c, v))
        for c, card in CARDINALITIES.items()
        for v in range(card)
    )
    print("final index is bit-exact with a from-scratch rebuild")
    counters = frontend.obs.metrics.snapshot()["counters"]
    cache_counters = {k: v for k, v in sorted(counters.items()) if k.startswith("cache.")}
    print(f"obs counters: {cache_counters}")
    print()


def main() -> None:
    strategy_comparison()
    invalidation_walkthrough()


if __name__ == "__main__":
    main()
