#!/usr/bin/env python3
"""The sharded cluster tier end to end: route, scatter, gather, scale.

One device's banks are the paper's parallelism; the cluster tier stacks
devices.  This example builds a 4-shard cluster — each shard an
:class:`AmbitEngine` over its own DDR3 device behind its own
admission-controlled :class:`ServiceFrontend` — and walks the three
mechanisms the tier adds:

* **routing** — scans go to the shard holding their column's planes;
  a replicated *hot* column's scans spread over its replicas by load,
* **scatter-gather** — a bitmap conjunction whose predicate columns live
  on different shards executes as shard-local OR/AND chains whose
  partial bitmaps are AND-merged host-side (bit-exact with one device),
* **scaling** — the same overload stream served by 1, 2, and 4 shards,
  with the ClusterMetrics roll-up (utilization, imbalance, fan-out).

Run with::

    python examples/cluster_scaling.py
"""

import numpy as np

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.tables import ResultTable
from repro.api import PimSession
from repro.cluster import ClusterFrontend, ShardRouter
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.service import BatchPolicy, ScanRequest, poisson_schedule

BANKS_PER_SHARD = 8
NUM_COLUMNS = 32
ROWS = 65536
CODE_BITS = 8


def engine_factory() -> AmbitEngine:
    return AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=BANKS_PER_SHARD))


def build_cluster(num_shards: int, router: ShardRouter = None) -> ClusterFrontend:
    return ClusterFrontend(
        num_shards=num_shards,
        router=router or ShardRouter(num_shards),
        engine_factory=engine_factory,
        policy=BatchPolicy(max_batch=64, window_ns=None),
        max_queue_depth=96,
    )


def hot_column_replication() -> None:
    """A replicated hot column's scans spread over the replicas."""
    rng = np.random.default_rng(1)
    hot = BitWeavingColumn(rng.integers(0, 1 << CODE_BITS, size=ROWS), CODE_BITS)
    router = ShardRouter(4, replication_factor=3, hot_columns=[hot])
    cluster = build_cluster(4, router)
    records = [
        cluster.offer(ScanRequest(column=hot, kind="less_than", constants=(c,)))
        for c in range(30, 42)
    ]
    cluster.drain()
    used = sorted({r.shard_ids[0] for r in records})
    print(
        f"hot column on replicas {sorted(router.replicas(hot))}: 12 scans routed "
        f"across shards {used} (replication turns space into bandwidth)"
    )


def scatter_gather() -> None:
    """A cross-shard conjunction merges per-shard partial bitmaps."""
    rng = np.random.default_rng(2)
    table = ColumnTable("orders", ROWS)
    table.add_column("region", rng.integers(0, 8, size=ROWS), cardinality=8)
    table.add_column("status", rng.integers(0, 4, size=ROWS), cardinality=4)
    table.add_column("tier", rng.integers(0, 6, size=ROWS), cardinality=6)
    index = BitmapIndex(table, ["region", "status", "tier"])

    session = PimSession(build_cluster(4))
    predicates = [("region", (1, 2, 3)), ("status", (0, 1)), ("tier", (0, 2))]
    response = session.conjunction(index, predicates).result()
    expected, _plan = index.evaluate_conjunction(predicates)
    assert np.array_equal(response.value, expected), "scatter-gather diverged"
    print(
        f"conjunction scattered over {response.details.fanout} shard(s) "
        f"{list(response.details.shard_ids)}; merged bitmap bit-exact with "
        f"single-device evaluation ({response.matching_rows} matching rows, "
        f"{response.details.host_merge_ns:.0f} ns charged to the host merge)"
    )


def scaling_sweep() -> None:
    """The same Poisson overload served by 1, 2, and 4 shards."""
    rng = np.random.default_rng(7)
    columns = [
        BitWeavingColumn(rng.integers(0, 1 << CODE_BITS, size=ROWS), CODE_BITS)
        for _ in range(NUM_COLUMNS)
    ]
    scans = []
    for i in range(768):
        low = int(rng.integers(0, 200))
        scans.append(
            ScanRequest(
                column=columns[i % NUM_COLUMNS],
                kind="between",
                constants=(low, low + int(rng.integers(1, 55))),
            )
        )

    table = ResultTable(
        title="Poisson overload (16 M req/s offered), shards of 8 banks",
        columns=["shards", "completed", "rejected", "GB/s", "speedup", "util", "imbalance"],
    )
    base = None
    for num_shards in (1, 2, 4):
        # One session loop, any shard count: the unified API is what
        # makes "the same workload, both tiers" a one-line change.
        session = PimSession(build_cluster(num_shards), name=f"cluster_{num_shards}")
        events = poisson_schedule(list(scans), rate_per_s=16e6, seed=11)
        futures = session.submit_stream(events)
        session.drain()
        m = session.report().details
        completed_bytes = sum(f.metrics.bytes_produced for f in futures if f.done())
        throughput = completed_bytes / (m.makespan_ns * 1e-9)
        base = base or throughput
        table.add_row(
            num_shards, m.completed, m.rejected, throughput / 1e9,
            f"{throughput / base:.2f}x", f"{m.mean_utilization:.2f}",
            f"{m.imbalance:.2f}",
        )
    print(table.render())


def main() -> None:
    hot_column_replication()
    scatter_gather()
    scaling_sweep()


if __name__ == "__main__":
    main()
