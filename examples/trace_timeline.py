#!/usr/bin/env python3
"""A traced run of the service pipeline, rendered as a lane timeline.

Runs a small overloaded Poisson stream of predicate scans through the
``ServiceFrontend`` with ``observe=True``, then renders what the
observability plane recorded — all of it stamped from the simulation's
virtual clock, so the traced run is bit-exact with an untraced one:

* the **lane timeline** — one ASCII row per bank lane (plus the host
  lane and the batch track), showing each lane's busy intervals and
  occupancy over the run;
* the **span tree** of the slowest completed request — where its sojourn
  went (queueing vs service), which batch served it, and its deadline
  slack;
* the **metrics snapshot** — counters and streaming-histogram
  percentiles from the same run;
* a ``TRACE_timeline.json`` Perfetto export: load it at
  https://ui.perfetto.dev (or chrome://tracing) for the zoomable view.

Run with::

    python examples/trace_timeline.py
"""

import numpy as np

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis import render_lane_timeline, render_span_tree
from repro.dram.device import DramDevice
from repro.database.bitweaving import BitWeavingColumn
from repro.obs import write_trace
from repro.service import (
    BatchExecutor,
    BatchPolicy,
    ScanRequest,
    ServiceFrontend,
    poisson_schedule,
)

NUM_SCANS = 48
BANKS = 4
QUEUE_DEPTH = 12                # shallow on purpose: overload sheds load
ARRIVAL_RATE_PER_S = 6e6       # well past the sequential service rate


def build_requests(rng):
    columns = [
        BitWeavingColumn(rng.integers(0, 256, size=16384), 8) for _ in range(BANKS)
    ]
    requests = []
    for index in range(NUM_SCANS):
        column = columns[index % BANKS]
        if index % 5 == 0:
            low = int(rng.integers(0, 200))
            requests.append(
                ScanRequest(column=column, kind="between", constants=(low, low + 40))
            )
        else:
            requests.append(
                ScanRequest(
                    column=column, kind="less_than",
                    constants=(int(rng.integers(1, 256)),),
                )
            )
    return requests


def main() -> None:
    rng = np.random.default_rng(9)
    engine = AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=BANKS))
    frontend = ServiceFrontend(
        executor=BatchExecutor(engine=engine),
        policy=BatchPolicy(max_batch=8, window_ns=None),
        max_queue_depth=QUEUE_DEPTH,
        observe=True,
    )
    events = poisson_schedule(
        build_requests(rng), rate_per_s=ARRIVAL_RATE_PER_S, seed=17
    )
    result = frontend.run(events, name="traced_overload")
    metrics = result.metrics

    print(render_lane_timeline(frontend.obs.tracer))

    completed = result.completed()
    slowest = max(completed, key=lambda r: r.finish_ns - r.arrival_ns)
    print(
        f"\nslowest completed request "
        f"(sojourn {(slowest.finish_ns - slowest.arrival_ns) / 1e3:.1f} us):"
    )
    print(render_span_tree(slowest.trace))

    snapshot = frontend.obs.snapshot()
    print("\ncounters:")
    for name, value in snapshot["counters"].items():
        print(f"  {name:<28} {value:g}")
    print("histograms (p50 / p99, us):")
    for name, hist in snapshot["histograms"].items():
        print(f"  {name:<28} {hist['p50'] / 1e3:.1f} / {hist['p99'] / 1e3:.1f}")

    path = write_trace(
        "TRACE_timeline.json", frontend.obs.tracer, metrics=frontend.obs.metrics
    )
    print(
        f"\n{metrics.completed} completed, {metrics.rejected} shed "
        f"(queue depth {QUEUE_DEPTH}); full trace written to {path} — "
        "load it at https://ui.perfetto.dev"
    )


if __name__ == "__main__":
    main()
