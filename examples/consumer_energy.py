#!/usr/bin/env python3
"""Consumer-device energy analysis and PIM offload planning.

This example reproduces the consumer-workloads study interactively:

1. it breaks down where the energy of the four Google workloads goes and
   shows the data-movement share (the paper's 62.7% observation),
2. it evaluates offloading each workload's target functions to a PIM core
   or a fixed-function PIM accelerator in the logic layer of a 3D-stacked
   memory, including the area-budget check, and
3. it uses the offload planner on a few custom kernels to show how the
   decision flips as compute intensity rises.

Run with::

    python examples/consumer_energy.py
"""

from repro.consumer import ConsumerStudy
from repro.core import KernelDescriptor, OffloadPlanner


def main() -> None:
    study = ConsumerStudy()

    print(study.energy_fraction_table().render())
    print()
    print(study.area_table().render())
    print()
    print(study.offload_table().render())
    print()

    planner = OffloadPlanner()
    print("Offload planner decisions for custom kernels:")
    kernels = [
        KernelDescriptor("texture_tiling", instructions=2e8, memory_bytes=1e9, streaming_fraction=0.5),
        KernelDescriptor("jpeg_decode", instructions=4e9, memory_bytes=5e8, streaming_fraction=0.7),
        KernelDescriptor(
            "motion_estimation",
            instructions=8e8,
            memory_bytes=2e9,
            streaming_fraction=0.4,
            has_fixed_function_accelerator=True,
        ),
        KernelDescriptor("crypto_hash", instructions=5e10, memory_bytes=1e8, streaming_fraction=0.9),
    ]
    for kernel in kernels:
        decision = planner.plan(kernel)
        print(
            f"  {kernel.name:<18} {kernel.operations_per_byte:7.2f} ops/byte -> "
            f"{decision.target.value:<16} "
            f"(projected {decision.projected_speedup:.2f}x speedup, "
            f"{decision.projected_energy_reduction_percent:.0f}% energy reduction)"
        )


if __name__ == "__main__":
    main()
