#!/usr/bin/env python3
"""The batch plan optimizer on a repetition-heavy conjunction stream.

Real query streams repeat themselves: dashboards refresh the same
filters, cohorts of clients ask near-identical questions.  The
per-request planner lowers every conjunction in isolation, so a
repetition-heavy stream re-executes identical predicate sub-chains over
and over on one pinned bank set.  With ``optimize=True`` the planner
hands each closed batch to the plan optimizer, which

* canonicalizes predicate sub-chains and executes each distinct one
  **once** per batch, fanning the result bitmap out to every consumer
  (cross-request common-subexpression sharing),
* spreads a single request's independent sub-chains over distinct bank
  lanes picked from the executor's busy horizons, joining them with a
  host-side merge tree priced like the cluster gather (sub-chain
  splitting), and
* prices deadline urgency off those same lane horizons instead of the
  idealized "now".

The run serves the same Zipf-skewed stream twice — per-request planner
vs optimizer — with ``sanitize=True`` (every optimized DAG certified by
the extended plan linter, every dispatch replayed by the race detector),
then prints the elimination counters straight off the session report.

Run with::

    python examples/plan_optimizer.py
"""

import numpy as np

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.tables import ResultTable
from repro.api import PimSession
from repro.database.bitmap_index import BitmapIndex
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.service import (
    BatchExecutor,
    BatchPolicy,
    BitmapConjunctionRequest,
    ServiceFrontend,
    poisson_schedule,
)

NUM_ROWS = 65536
CARDINALITIES = {"region": 16, "status": 8, "channel": 8}
NUM_TEMPLATES = 10
NUM_REQUESTS = 120
ZIPF_S = 1.3


def build_stream(rng):
    """A Zipf-skewed stream of conjunctions drawn from a template pool."""
    table = ColumnTable("orders", NUM_ROWS)
    for name, cardinality in CARDINALITIES.items():
        table.add_column(
            name, rng.integers(0, cardinality, size=NUM_ROWS), cardinality=cardinality
        )
    index = BitmapIndex(table, list(CARDINALITIES))

    columns = list(CARDINALITIES)
    templates = []
    for _ in range(NUM_TEMPLATES):
        picked = rng.choice(len(columns), size=int(rng.integers(2, 4)), replace=False)
        predicates = []
        for c in picked:
            name = columns[c]
            width = int(rng.integers(2, 5))
            values = rng.choice(CARDINALITIES[name], size=width, replace=False)
            predicates.append((name, tuple(int(v) for v in values)))
        templates.append(tuple(predicates))

    weights = 1.0 / np.arange(1, NUM_TEMPLATES + 1) ** ZIPF_S
    weights /= weights.sum()
    draws = rng.choice(NUM_TEMPLATES, size=NUM_REQUESTS, p=weights)
    requests = [
        BitmapConjunctionRequest(index=index, predicates=templates[d]) for d in draws
    ]
    duplication = 1.0 - len(set(int(d) for d in draws)) / NUM_REQUESTS
    return requests, duplication


def serve(requests, optimize):
    session = PimSession(
        ServiceFrontend(
            executor=BatchExecutor(
                engine=AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=8)),
                sanitize=True,
            ),
            policy=BatchPolicy(max_batch=16, window_ns=None),
            max_queue_depth=10 * NUM_REQUESTS,
            optimize=optimize,
        ),
        name="optimized" if optimize else "baseline",
    )
    session.submit_stream(poisson_schedule(requests, rate_per_s=6e6, seed=11))
    session.drain()
    return session.report()


def main() -> None:
    rng = np.random.default_rng(23)
    requests, duplication = build_stream(rng)

    reports = {label: serve(requests, optimize) for label, optimize in
               [("per-request", False), ("optimizer", True)]}

    table = ResultTable(
        title=(
            f"{NUM_REQUESTS} conjunctions from {NUM_TEMPLATES} templates "
            f"(duplication {duplication:.2f}) on DDR3, 8 banks"
        ),
        columns=["planner", "completed", "batches", "makespan_ms",
                 "sojourn_p99_us", "ops_eliminated", "shared_subchains",
                 "host_merge_us"],
    )
    for label, report in reports.items():
        table.add_row(
            label,
            report.completed,
            report.details.batches,
            report.makespan_ns / 1e6,
            report.sojourn_p99_ns / 1e3,
            report.ops_eliminated,
            report.shared_subchains,
            report.host_merge_ns / 1e3,
        )
    print(table.render())

    base, opt = reports["per-request"], reports["optimizer"]
    speedup = base.makespan_ns / opt.makespan_ns
    print(
        f"\nthe optimizer eliminated {opt.ops_eliminated} device ops "
        f"({opt.shared_subchains} sub-chains served from a shared result), "
        f"finishing the stream {speedup:.2f}x faster"
    )


if __name__ == "__main__":
    main()
