#!/usr/bin/env python3
"""A mixed request stream through the bulk-operation service layer.

This example plays a synthetic client workload against the
:class:`~repro.service.scheduler.BatchScheduler`: BitWeaving predicate
scans over several columns, Ambit bulk bitwise operations, and RowClone
bulk copies arrive interleaved, as they would from many concurrent users.
The stream is served in batches, and each batch reports how much latency
bank-level overlap recovered compared with one-at-a-time execution — at
identical total energy, which is the service layer's core guarantee.

A functional pass on a tiny device at the end double-checks bit-exactness
and shows the allocation pool recycling rows across batches.

This example drives the *one-shot facade* (the caller shapes the batches);
see ``examples/service_pipeline.py`` for the admission-controlled pipeline
where the service shapes its own batches from an arrival process, with
priorities, deadlines, and backpressure.

Run with::

    python examples/service_traffic.py
"""

import numpy as np

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.tables import ResultTable
from repro.database.bitweaving import BitWeavingColumn
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.rowclone.engine import CopyMode
from repro.service import BatchScheduler

SCAN_KINDS = ("less_than", "less_equal", "equal", "between")


def random_request(rng, scheduler, columns, engine):
    """Submit one random request; returns its kind for the tally."""
    kind = rng.choice(["scan", "bulk_op", "copy"], p=[0.6, 0.25, 0.15])
    if kind == "scan":
        column = columns[rng.integers(len(columns))]
        top = (1 << column.num_bits) - 1
        predicate = SCAN_KINDS[rng.integers(len(SCAN_KINDS))]
        if predicate == "between":
            low = int(rng.integers(0, top + 1))
            high = int(rng.integers(low, top + 1))
            scheduler.submit_scan(column, predicate, low, high)
        else:
            scheduler.submit_scan(column, predicate, int(rng.integers(0, top + 1)))
    elif kind == "bulk_op":
        # Host-only vectors keep the big analytical stream allocation-free.
        bits = int(rng.integers(1, 4)) * 1024 * 1024
        op = rng.choice(["and", "or", "xor", "nand", "not"])
        a = BulkBitVector(bits)
        b = BulkBitVector(bits) if op != "not" else None
        scheduler.submit_bulk_op(op, a, b)
    else:
        num_bytes = int(rng.integers(1, 64)) * 8192
        mode = CopyMode.FPM if rng.random() < 0.7 else CopyMode.INTER_SUBARRAY
        scheduler.submit_copy(num_bytes, mode=mode, fill=rng.random() < 0.3)
    return kind


def serve_analytical_stream() -> None:
    rng = np.random.default_rng(42)
    engine = AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=16))
    scheduler = BatchScheduler(engine=engine)
    columns = [
        BitWeavingColumn(rng.integers(0, 256, size=262144), 8) for _ in range(12)
    ]

    table = ResultTable(
        title="Mixed request stream on DDR3 (16 banks), batched service",
        columns=["batch", "requests", "scan/op/copy", "serial_ms", "batched_ms",
                 "speedup", "energy_mj"],
    )
    for batch_index in range(4):
        tally = {"scan": 0, "bulk_op": 0, "copy": 0}
        for _ in range(48):
            tally[random_request(rng, scheduler, columns, engine)] += 1
        batch = scheduler.execute()
        table.add_row(
            batch_index,
            batch.metrics.requests,
            f"{tally['scan']}/{tally['bulk_op']}/{tally['copy']}",
            batch.metrics.serial_latency_ns / 1e6,
            batch.metrics.latency_ns / 1e6,
            batch.metrics.batching_speedup,
            batch.metrics.energy_j * 1e3,
        )
    print(table.render())


def verify_functional_smoke() -> None:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=4,
        subarrays_per_bank=2,
        rows_per_subarray=32,
        row_size_bytes=64,
    )
    device = DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )
    engine = AmbitEngine(
        device, AmbitConfig(banks_parallel=4, vectorized_functional=True)
    )
    scheduler = BatchScheduler(engine=engine)
    rng = np.random.default_rng(7)
    columns = [BitWeavingColumn(rng.integers(0, 64, size=300), 6) for _ in range(4)]

    for round_index in range(3):
        for column in columns:
            scheduler.submit_scan(column, "between", 5, 50)
            scheduler.submit_scan(column, "equal", 21)
        # Results are verified against the banks inside execute().
        batch = scheduler.execute(functional=True)
        print(
            f"functional batch {round_index}: {len(batch)} scans verified on the "
            f"banks, {batch.metrics.notes or 'no fusion'}, "
            f"pool {scheduler.pool.hits} hits / {scheduler.pool.misses} misses, "
            f"{engine.allocator.allocated_rows()} DRAM rows in use"
        )


def main() -> None:
    serve_analytical_stream()
    print()
    verify_functional_smoke()


if __name__ == "__main__":
    main()
