#!/usr/bin/env python3
"""The admission-controlled service pipeline end to end.

Two traffic classes share one PIM service: latency-critical *interactive*
predicate scans (high priority, tight deadlines) and best-effort *batch*
work (bitmap-index conjunctions and bulk scans, no deadlines).  Requests
arrive as a Poisson process well past the sequential service rate, so the
pipeline has to earn its keep:

* the **frontend** admits arrivals into a bounded priority queue and
  rejects the overflow (backpressure a real deployment would propagate),
* the **planner** closes batches by size/window/deadline urgency and
  lowers the conjunctions into primitive bulk-operation chains,
* the **executor** overlaps each batch across the device's banks with LPT
  ordering — the only speedup mechanism; per-request latency and energy
  stay exactly sequential.

A functional pass on a tiny device at the end re-runs a slice of the
stream on the simulated banks with sampled verification
(``verify_fraction``), double-checking bit-exactness.

Run with::

    python examples/service_pipeline.py
"""

import numpy as np

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.tables import ResultTable
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.service import (
    ArrivalEvent,
    BatchExecutor,
    BatchPolicy,
    BitmapConjunctionRequest,
    ScanRequest,
    ServiceFrontend,
)

SCAN_KINDS = ("less_than", "less_equal", "equal", "between")


def build_workload(rng, num_requests=160, rate_per_s=3e6):
    """An interleaved two-class arrival stream."""
    columns = [
        BitWeavingColumn(rng.integers(0, 256, size=65536), 8) for _ in range(12)
    ]
    table = ColumnTable("orders", 65536)
    table.add_column("region", rng.integers(0, 8, size=65536), cardinality=8)
    table.add_column("status", rng.integers(0, 4, size=65536), cardinality=4)
    index = BitmapIndex(table, ["region", "status"])

    events = []
    now = 0.0
    for _ in range(num_requests):
        now += rng.exponential(1e9 / rate_per_s)
        if rng.random() < 0.5:
            # Interactive: single predicate scan, priority 1, tight deadline.
            column = columns[rng.integers(len(columns))]
            kind = SCAN_KINDS[rng.integers(len(SCAN_KINDS))]
            if kind == "between":
                low = int(rng.integers(0, 200))
                request = ScanRequest(
                    column=column, kind=kind,
                    constants=(low, low + int(rng.integers(1, 55))),
                )
            else:
                request = ScanRequest(
                    column=column, kind=kind, constants=(int(rng.integers(0, 256)),)
                )
            events.append(
                ArrivalEvent(request, now, priority=1, deadline_ns=now + 40_000.0)
            )
        else:
            # Best effort: a bitmap conjunction, no deadline.
            request = BitmapConjunctionRequest(
                index=index,
                predicates=(
                    ("region", tuple(int(v) for v in rng.choice(8, size=2, replace=False))),
                    ("status", (int(rng.integers(0, 4)),)),
                ),
            )
            events.append(ArrivalEvent(request, now, priority=0))
    return events


def serve_stream() -> None:
    from repro.api import PimSession

    rng = np.random.default_rng(42)
    engine = AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=8))
    # The unified client API: a session over the service frontend.  The
    # identical loop would drive a ClusterFrontend or the host baseline.
    session = PimSession(
        ServiceFrontend(
            executor=BatchExecutor(engine=engine),
            policy=BatchPolicy(max_batch=48, window_ns=25_000.0, urgency_slack_ns=0.0),
            max_queue_depth=64,
        ),
        name="two_class_stream",
    )
    events = build_workload(rng)
    futures = session.submit_stream(events)
    session.drain()
    m = session.report().details

    table = ResultTable(
        title="Two-class Poisson stream on DDR3 (8 banks)",
        columns=["metric", "value"],
    )
    table.add_row("offered", m.offered)
    table.add_row("admitted", m.admitted)
    table.add_row("rejected (backpressure)", m.rejected)
    table.add_row("completed", m.completed)
    table.add_row("batches", m.batches)
    table.add_row("wait p50 / p99 (us)", f"{m.wait_p50_ns / 1e3:.1f} / {m.wait_p99_ns / 1e3:.1f}")
    table.add_row("sojourn p50 / p99 (us)", f"{m.sojourn_p50_ns / 1e3:.1f} / {m.sojourn_p99_ns / 1e3:.1f}")
    table.add_row("deadline misses", m.deadline_misses)
    table.add_row("pipeline speedup", f"{m.pipeline_speedup:.2f}x")
    table.add_row("energy (mJ)", f"{m.energy_j * 1e3:.3f}")
    print(table.render())

    done = [f for f in futures if f.done()]
    interactive = [f for f in done if f.record.priority == 1]
    batch_class = [f for f in done if f.record.priority == 0]
    if interactive and batch_class:
        mean = lambda xs: sum(xs) / len(xs)
        print(
            f"\ninteractive mean sojourn {mean([f.sojourn_ns for f in interactive]) / 1e3:.1f} us"
            f" vs best-effort {mean([f.sojourn_ns for f in batch_class]) / 1e3:.1f} us"
            " (priorities at work)"
        )


def verify_functional_smoke() -> None:
    geometry = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=4,
        subarrays_per_bank=2,
        rows_per_subarray=32,
        row_size_bytes=64,
    )
    device = DramDevice(
        geometry, DramTimingParameters.ddr3_1600(), DramEnergyParameters.ddr3_1600()
    )
    engine = AmbitEngine(
        device, AmbitConfig(banks_parallel=4, vectorized_functional=True)
    )
    executor = BatchExecutor(engine=engine, verify_fraction=0.5, verify_seed=3)
    frontend = ServiceFrontend(
        executor=executor, policy=BatchPolicy(max_batch=8), functional=True
    )
    rng = np.random.default_rng(7)
    columns = [BitWeavingColumn(rng.integers(0, 64, size=300), 6) for _ in range(4)]
    for column in columns:
        frontend.offer(ScanRequest(column=column, kind="between", constants=(5, 50)))
        frontend.offer(ScanRequest(column=column, kind="equal", constants=(21,)))
    frontend.drain()
    result = frontend.result("functional_smoke")
    for record in result.completed():
        expected, _ = record.request.column.scan(
            record.request.kind, *record.request.constants
        )
        assert np.array_equal(record.value, expected), "pipeline diverged"
    print(
        f"\nfunctional smoke: {result.metrics.completed} scans bit-exact; "
        f"{executor.functional_executed} verified on the banks, "
        f"{executor.sampled_out} sampled out (verify_fraction=0.5), "
        f"pool {executor.pool.hits} hits / {executor.pool.misses} misses"
    )


def main() -> None:
    serve_stream()
    verify_functional_smoke()


if __name__ == "__main__":
    main()
