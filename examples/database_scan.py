#!/usr/bin/env python3
"""Analytics queries over a column store: CPU vs. Ambit scans.

This example builds a synthetic sales table, indexes it with a bitmap index
and a BitWeaving layout, and runs the same queries on two backends:

* the host CPU (bulk bitwise operations through the cache hierarchy), and
* Ambit (bulk bitwise operations inside DRAM).

It prints the per-query latency on both backends for several table sizes to
show how the in-memory advantage grows once the bit vectors no longer fit in
the last-level cache — the behaviour behind the paper's 2x–12x query-latency
reduction.

Run with::

    python examples/database_scan.py
"""

from repro.analysis.tables import ResultTable
from repro.database import (
    BitWeavingColumn,
    BitmapIndex,
    QueryEngine,
    ScanBackend,
    generate_sales_table,
)


def run_queries(num_rows: int, engine: QueryEngine, table: ResultTable) -> None:
    sales = generate_sales_table(num_rows, seed=1)
    quantity = BitWeavingColumn.from_table(sales, "quantity")
    index = BitmapIndex(sales, ["region", "product"])

    # Query 1: SELECT COUNT(*) WHERE 32 <= quantity <= 57 (BitWeaving range scan).
    cpu = engine.range_count_query(quantity, 32, 57, ScanBackend.CPU)
    ambit = engine.range_count_query(quantity, 32, 57, ScanBackend.AMBIT)
    table.add_row(
        num_rows,
        "range scan (quantity)",
        cpu.matching_rows,
        cpu.latency_ns / 1e6,
        ambit.latency_ns / 1e6,
        cpu.latency_ns / ambit.latency_ns,
    )

    # Query 2: SELECT COUNT(*) WHERE region IN (0,1) AND product IN (0..3).
    predicates = [("region", [0, 1]), ("product", [0, 1, 2, 3])]
    cpu = engine.bitmap_conjunction_query(index, predicates, ScanBackend.CPU)
    ambit = engine.bitmap_conjunction_query(index, predicates, ScanBackend.AMBIT)
    table.add_row(
        num_rows,
        "bitmap conjunction",
        cpu.matching_rows,
        cpu.latency_ns / 1e6,
        ambit.latency_ns / 1e6,
        cpu.latency_ns / ambit.latency_ns,
    )


def main() -> None:
    engine = QueryEngine()
    table = ResultTable(
        title="Analytics queries: CPU vs. Ambit scan backends",
        columns=["rows", "query", "matches", "cpu_ms", "ambit_ms", "speedup"],
    )
    for num_rows in (1_000_000, 4_000_000, 16_000_000):
        run_queries(num_rows, engine, table)
    print(table.render())


if __name__ == "__main__":
    main()
