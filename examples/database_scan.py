#!/usr/bin/env python3
"""Analytics queries over a column store: CPU vs. Ambit scans.

This example builds a synthetic sales table, indexes it with a bitmap index
and a BitWeaving layout, and runs the same queries through one
:class:`~repro.api.PimSession` API against two backends:

* the host CPU (``PimSession.over_host()`` — bulk bitwise operations
  through the cache hierarchy), and
* Ambit (``PimSession.over_service()`` — bulk bitwise operations inside
  DRAM, behind the service tier).

It prints the per-query latency on both backends for several table sizes to
show how the in-memory advantage grows once the bit vectors no longer fit in
the last-level cache — the behaviour behind the paper's 2x–12x query-latency
reduction.

Run with::

    python examples/database_scan.py
"""

from repro.analysis.tables import ResultTable
from repro.api import PimSession
from repro.database import (
    BitWeavingColumn,
    BitmapIndex,
    generate_sales_table,
)


def run_queries(
    num_rows: int, host: PimSession, ambit: PimSession, table: ResultTable
) -> None:
    sales = generate_sales_table(num_rows, seed=1)
    quantity = BitWeavingColumn.from_table(sales, "quantity")
    index = BitmapIndex(sales, ["region", "product"])

    # Query 1: SELECT COUNT(*) WHERE 32 <= quantity <= 57 (BitWeaving range scan).
    cpu = host.range_count(quantity, 32, 57).result()
    pim = ambit.range_count(quantity, 32, 57).result()
    table.add_row(
        num_rows,
        "range scan (quantity)",
        cpu.matching_rows,
        cpu.latency_ns / 1e6,
        pim.latency_ns / 1e6,
        cpu.latency_ns / pim.latency_ns,
    )

    # Query 2: SELECT COUNT(*) WHERE region IN (0,1) AND product IN (0..3).
    predicates = [("region", [0, 1]), ("product", [0, 1, 2, 3])]
    cpu = host.conjunction(index, predicates).result()
    pim = ambit.conjunction(index, predicates).result()
    table.add_row(
        num_rows,
        "bitmap conjunction",
        cpu.matching_rows,
        cpu.latency_ns / 1e6,
        pim.latency_ns / 1e6,
        cpu.latency_ns / pim.latency_ns,
    )


def main() -> None:
    host = PimSession.over_host()
    ambit = PimSession.over_service()
    table = ResultTable(
        title="Analytics queries: CPU vs. Ambit scan backends (one PimSession API)",
        columns=["rows", "query", "matches", "cpu_ms", "ambit_ms", "speedup"],
    )
    for num_rows in (1_000_000, 4_000_000, 16_000_000):
        run_queries(num_rows, host, ambit, table)
    ambit.close()
    print(table.render())


if __name__ == "__main__":
    main()
