#!/usr/bin/env python3
"""Rejected requests don't vanish: a retry/backoff client over the service.

Admission control turns overload into rejections; PR 2 left those
requests on the floor.  :class:`RetryClient` models the client side of
backpressure on the same virtual clock: every rejection re-offers after
exponential backoff (with seeded jitter to break up retry storms), so a
burst that overwhelms the queue drains through it over a few attempts
instead of being lost.

The demo offers one burst far past the queue bound, one-shot vs. retried,
then shows the same client driving a 2-shard cluster.

Run with::

    python examples/retry_backoff.py
"""

import numpy as np

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.tables import ResultTable
from repro.api import PimSession
from repro.cluster import ClusterFrontend
from repro.database.bitweaving import BitWeavingColumn
from repro.dram.device import DramDevice
from repro.service import (
    BackoffPolicy,
    BatchExecutor,
    BatchPolicy,
    RetryClient,
    ScanRequest,
    ServiceFrontend,
    poisson_schedule,
)

NUM_SCANS = 96
CODE_BITS = 8
ROWS = 65536


def build_events(seed: int = 3):
    rng = np.random.default_rng(seed)
    columns = [
        BitWeavingColumn(rng.integers(0, 1 << CODE_BITS, size=ROWS), CODE_BITS)
        for _ in range(16)
    ]
    scans = [
        ScanRequest(
            column=columns[i % len(columns)],
            kind="less_than",
            constants=(int(rng.integers(1, 1 << CODE_BITS)),),
        )
        for i in range(NUM_SCANS)
    ]
    # A hard burst: everything arrives within a few microseconds.
    return poisson_schedule(scans, rate_per_s=40e6, seed=seed)


def build_frontend() -> ServiceFrontend:
    return ServiceFrontend(
        executor=BatchExecutor(
            engine=AmbitEngine(DramDevice.ddr3(), AmbitConfig(banks_parallel=8))
        ),
        # Batches must close while retries are pending (size 8 fires well
        # below the queue bound), or the queue never drains mid-stream.
        policy=BatchPolicy(max_batch=8, window_ns=None),
        max_queue_depth=24,
    )


def main() -> None:
    table = ResultTable(
        title=f"{NUM_SCANS}-scan burst into a 24-deep queue",
        columns=["client", "delivered", "after_retry", "gave_up", "attempts"],
    )

    # One-shot client: rejections are lost.
    one_shot = build_frontend().run(build_events(), name="one_shot")
    table.add_row(
        "one-shot", one_shot.metrics.completed, 0,
        one_shot.metrics.rejected, one_shot.metrics.offered,
    )

    # Retrying client: the same burst drains through the bounded queue.
    policy = BackoffPolicy(base_ns=10_000.0, multiplier=2.0, max_attempts=6, jitter=0.25)
    outcome = RetryClient(build_frontend(), policy, seed=1).run(
        build_events(), name="retry_client"
    )
    table.add_row(
        "retry/backoff", outcome.delivered, outcome.delivered_after_retry,
        outcome.gave_up, outcome.total_attempts,
    )

    # The same client drives a sharded cluster unchanged — here wrapped in
    # a PimSession (the client speaks the shared Backend protocol either
    # way, so passing the session or its backend is equivalent).
    session = PimSession(
        ClusterFrontend(
            num_shards=2,
            engine_factory=lambda: AmbitEngine(
                DramDevice.ddr3(), AmbitConfig(banks_parallel=8)
            ),
            policy=BatchPolicy(max_batch=8, window_ns=None),
            max_queue_depth=12,
        )
    )
    clustered = RetryClient(session, policy, seed=1).run(build_events(), name="cluster")
    table.add_row(
        "retry over 2 shards", clustered.delivered, clustered.delivered_after_retry,
        clustered.gave_up, clustered.total_attempts,
    )
    print(table.render())

    recovered = [r for r in outcome.records if r.delivered and r.retries]
    if recovered:
        waits = [r.final.arrival_ns - r.event.arrival_ns for r in recovered]
        print(
            f"\n{len(recovered)} requests got in on a later attempt; "
            f"worst client-side backoff wait {max(waits) / 1e3:.0f} us "
            f"(base 10 us, doubling, jitter 25%)"
        )


if __name__ == "__main__":
    main()
