#!/usr/bin/env python3
"""Near-memory graph analytics with Tesseract.

This example generates a scale-free (R-MAT) graph, runs the five graph
workloads of the Tesseract evaluation to measure their per-iteration work,
partitions the graph across the 512 vaults of a 16-cube stacked-memory
system, and compares Tesseract against a conventional DDR3-based server.

It also demonstrates the message-passing programming interface directly by
running a few PageRank supersteps with explicit remote function calls and
reporting how many messages crossed vault and cube boundaries.

Run with::

    python examples/graph_analytics.py
"""

from repro.analysis.metrics import arithmetic_mean, geometric_mean
from repro.analysis.tables import ResultTable
from repro.graph import (
    average_teenage_follower,
    breadth_first_search,
    pagerank,
    partition_graph,
    rmat,
    single_source_shortest_paths,
    weakly_connected_components,
)
from repro.stacked import StackedMemorySystem
from repro.tesseract import ConventionalGraphSystem, TesseractSystem
from repro.tesseract.message import build_pagerank_runtime, pagerank_superstep

GRAPH_SCALE = 16          # 65,536 vertices in the measured graph
SCALE_FACTOR = 256        # profiles scaled to a ~16M-vertex logical graph


def main() -> None:
    print(f"Generating R-MAT graph (2^{GRAPH_SCALE} vertices, avg degree 16)...")
    graph = rmat(GRAPH_SCALE, avg_degree=16, seed=7)
    print("  ", graph.describe())

    partition = partition_graph(graph, 512, vaults_per_cube=32, strategy="degree_balanced")
    print(
        f"Partitioned over 512 vaults: {partition.remote_fraction * 100:.1f}% remote edges, "
        f"load imbalance {partition.load_imbalance:.2f}"
    )
    print()

    # --- message-passing programming interface --------------------------
    runtime = build_pagerank_runtime(graph, partition)
    stats = pagerank_superstep(runtime)
    print("One PageRank superstep through the remote-function-call interface:")
    print(f"  {stats.total:,} edge updates, {stats.remote:,} remote calls "
          f"({stats.inter_cube:,} crossed cube boundaries)")
    print()

    # --- performance/energy comparison ----------------------------------
    tesseract = TesseractSystem(StackedMemorySystem(num_stacks=16))
    baseline = ConventionalGraphSystem()
    workloads = [
        ("pagerank", pagerank(graph, max_iterations=10)[1]),
        ("bfs", breadth_first_search(graph)[1]),
        ("sssp", single_source_shortest_paths(graph)[1]),
        ("wcc", weakly_connected_components(graph, max_iterations=15)[1]),
        ("atf", average_teenage_follower(graph)[1]),
    ]
    table = ResultTable(
        title="Tesseract vs. conventional server (profiles scaled x{})".format(SCALE_FACTOR),
        columns=["workload", "host_ms", "tesseract_ms", "speedup", "energy_reduction_%"],
    )
    speedups, reductions = [], []
    for name, profile in workloads:
        scaled = profile.scaled(SCALE_FACTOR)
        pim = tesseract.execute(scaled, partition)
        host = baseline.execute(
            graph, scaled, effective_num_vertices=graph.num_vertices * SCALE_FACTOR
        )
        speedups.append(pim.speedup_over(host))
        reductions.append(pim.energy_reduction_percent(host))
        table.add_row(name, host.time_ns / 1e6, pim.time_ns / 1e6, speedups[-1], reductions[-1])
    table.add_row("average", "-", "-", geometric_mean(speedups), arithmetic_mean(reductions))
    print(table.render())


if __name__ == "__main__":
    main()
